package bitutil

import "math/bits"

// Builder accumulates bits for a BitVector.
type Builder struct {
	words []uint64
	n     int
}

// Append adds one bit.
func (b *Builder) Append(bit bool) {
	word := b.n / 64
	if word == len(b.words) {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[word] |= 1 << uint(b.n%64)
	}
	b.n++
}

// AppendN adds n copies of bit.
func (b *Builder) AppendN(bit bool, n int) {
	for i := 0; i < n; i++ {
		b.Append(bit)
	}
}

// AppendWord adds the low n bits of w (LSB first).
func (b *Builder) AppendWord(w uint64, n int) {
	for i := 0; i < n; i++ {
		b.Append(w&(1<<uint(i)) != 0)
	}
}

// Len returns the number of appended bits.
func (b *Builder) Len() int { return b.n }

// Set sets bit i (which must already have been appended) to 1.
func (b *Builder) Set(i int) { b.words[i/64] |= 1 << uint(i%64) }

// Get reports bit i of the builder.
func (b *Builder) Get(i int) bool { return b.words[i/64]&(1<<uint(i%64)) != 0 }

// Build finalizes the vector and computes the rank/select directories.
func (b *Builder) Build() *BitVector {
	return newBitVector(b.words, b.n)
}

// BitVector is an immutable bit vector with O(1) Rank1 and near-O(1)
// Select1. The rank directory stores one cumulative 64-bit count per
// 512-bit superblock plus packed 9-bit offsets per word (stored as bytes of
// a uint64 here for simplicity: a rank9-style layout). Select keeps a
// sampled position every selectSample ones and scans forward.
type BitVector struct {
	words      []uint64
	superRank  []uint64 // cumulative ones before each 8-word superblock
	selectSamp []uint32 // position of every selectSample-th one
	n          int
	ones       int
}

const (
	wordsPerSuper = 8
	selectSample  = 512
)

func newBitVector(words []uint64, n int) *BitVector {
	v := &BitVector{words: words, n: n}
	nSuper := (len(words) + wordsPerSuper - 1) / wordsPerSuper
	v.superRank = make([]uint64, nSuper+1)
	ones := 0
	for s := 0; s < nSuper; s++ {
		v.superRank[s] = uint64(ones)
		end := (s + 1) * wordsPerSuper
		if end > len(words) {
			end = len(words)
		}
		for w := s * wordsPerSuper; w < end; w++ {
			ones += bits.OnesCount64(words[w])
		}
	}
	v.superRank[nSuper] = uint64(ones)
	v.ones = ones
	// Select samples.
	v.selectSamp = make([]uint32, 0, ones/selectSample+1)
	seen := 0
	for w, word := range words {
		c := bits.OnesCount64(word)
		for seen/selectSample != (seen+c)/selectSample {
			// The ((seen/selectSample)+1)*selectSample-th one lies in this word.
			target := (seen/selectSample + 1) * selectSample
			rem := target - seen // rem-th one inside word (1-based)
			pos := w*64 + selectInWord(word, rem)
			v.selectSamp = append(v.selectSamp, uint32(pos))
			seen += c
			c = 0 // loop exit: the remaining ones of this word were counted
			break
		}
		seen += c
	}
	return v
}

// selectInWord returns the bit index of the k-th (1-based) set bit of w.
func selectInWord(w uint64, k int) int {
	for i := 1; i < k; i++ {
		w &= w - 1
	}
	return bits.TrailingZeros64(w)
}

// Len returns the number of bits.
func (v *BitVector) Len() int { return v.n }

// Ones returns the total number of set bits.
func (v *BitVector) Ones() int { return v.ones }

// Bytes returns the approximate heap footprint.
func (v *BitVector) Bytes() int {
	return len(v.words)*8 + len(v.superRank)*8 + len(v.selectSamp)*4
}

// Get reports bit i.
func (v *BitVector) Get(i int) bool { return v.words[i/64]&(1<<uint(i%64)) != 0 }

// Rank1 returns the number of set bits in [0, i). i may equal Len().
func (v *BitVector) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= v.n {
		return v.ones
	}
	word := i / 64
	super := word / wordsPerSuper
	r := int(v.superRank[super])
	for w := super * wordsPerSuper; w < word; w++ {
		r += bits.OnesCount64(v.words[w])
	}
	return r + bits.OnesCount64(v.words[word]&(1<<uint(i%64)-1))
}

// Rank0 returns the number of zero bits in [0, i).
func (v *BitVector) Rank0(i int) int {
	if i >= v.n {
		return v.n - v.ones
	}
	return i - v.Rank1(i)
}

// Select1 returns the position of the k-th (1-based) set bit, or -1 if
// k exceeds the number of ones.
func (v *BitVector) Select1(k int) int {
	if k <= 0 || k > v.ones {
		return -1
	}
	// Start from the nearest sample, then hop superblocks, then words.
	startWord := 0
	count := 0
	if s := k/selectSample - 1; s >= 0 && s < len(v.selectSamp) {
		pos := int(v.selectSamp[s])
		startWord = pos / 64
		count = (s + 1) * selectSample
		// count ones strictly before startWord: subtract ones within word up to pos inclusive
		count -= bits.OnesCount64(v.words[startWord] & (^uint64(0) >> (63 - uint(pos%64))))
	}
	// Hop superblock boundaries where possible.
	super := startWord/wordsPerSuper + 1
	for super < len(v.superRank)-1 && int(v.superRank[super]) < k {
		prev := super * wordsPerSuper
		if int(v.superRank[super]) >= count {
			startWord = prev
			count = int(v.superRank[super])
		}
		super++
	}
	for w := startWord; w < len(v.words); w++ {
		c := bits.OnesCount64(v.words[w])
		if count+c >= k {
			return w*64 + selectInWord(v.words[w], k-count)
		}
		count += c
	}
	return -1
}

// NextSet returns the position of the first set bit at or after i, or -1.
func (v *BitVector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	w := i / 64
	cur := v.words[w] >> uint(i%64)
	if cur != 0 {
		p := i + bits.TrailingZeros64(cur)
		if p < v.n {
			return p
		}
		return -1
	}
	for w++; w < len(v.words); w++ {
		if v.words[w] != 0 {
			p := w*64 + bits.TrailingZeros64(v.words[w])
			if p < v.n {
				return p
			}
			return -1
		}
	}
	return -1
}

// PrevSet returns the position of the last set bit at or before i, or -1.
func (v *BitVector) PrevSet(i int) int {
	if i >= v.n {
		i = v.n - 1
	}
	if i < 0 {
		return -1
	}
	w := i / 64
	cur := v.words[w] << uint(63-i%64)
	if cur != 0 {
		return i - bits.LeadingZeros64(cur)
	}
	for w--; w >= 0; w-- {
		if v.words[w] != 0 {
			return w*64 + 63 - bits.LeadingZeros64(v.words[w])
		}
	}
	return -1
}

// AppendUint64s serializes the vector as (bitLen, wordCount, words...) into
// dst — the persistence primitive used by the FST. The rank/select
// directories are rebuilt on load rather than stored.
func (v *BitVector) AppendUint64s(dst []uint64) []uint64 {
	dst = append(dst, uint64(v.n), uint64(len(v.words)))
	return append(dst, v.words...)
}

// BitVectorFromUint64s reverses AppendUint64s, consuming from src and
// returning the remainder. The word payload is copied.
func BitVectorFromUint64s(src []uint64) (*BitVector, []uint64, error) {
	if len(src) < 2 {
		return nil, nil, errTruncated
	}
	n, words := int(src[0]), int(src[1])
	src = src[2:]
	if words > len(src) || n > words*64 || n < 0 {
		return nil, nil, errTruncated
	}
	w := make([]uint64, words)
	copy(w, src[:words])
	return newBitVector(w, n), src[words:], nil
}
