package bitutil

import (
	"math/rand"
	"testing"
)

// naiveBits mirrors a BitVector for cross-checking.
type naiveBits []bool

func (n naiveBits) rank1(i int) int {
	if i > len(n) {
		i = len(n)
	}
	r := 0
	for j := 0; j < i; j++ {
		if n[j] {
			r++
		}
	}
	return r
}

func (n naiveBits) select1(k int) int {
	seen := 0
	for i, b := range n {
		if b {
			seen++
			if seen == k {
				return i
			}
		}
	}
	return -1
}

func buildRandom(t *testing.T, n int, density float64, seed int64) (*BitVector, naiveBits) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b Builder
	ref := make(naiveBits, n)
	for i := 0; i < n; i++ {
		bit := rng.Float64() < density
		ref[i] = bit
		b.Append(bit)
	}
	return b.Build(), ref
}

func TestBitVectorRankSelectAgainstNaive(t *testing.T) {
	for _, tc := range []struct {
		n       int
		density float64
	}{
		{1, 1}, {63, 0.5}, {64, 0.5}, {65, 0.5}, {1000, 0.02},
		{5000, 0.5}, {5000, 0.95}, {4096, 0.25}, {513, 1.0}, {777, 0.0},
	} {
		v, ref := buildRandom(t, tc.n, tc.density, int64(tc.n)*31+int64(tc.density*100))
		if v.Len() != tc.n {
			t.Fatalf("Len=%d want %d", v.Len(), tc.n)
		}
		if v.Ones() != ref.rank1(tc.n) {
			t.Fatalf("n=%d d=%v: Ones=%d want %d", tc.n, tc.density, v.Ones(), ref.rank1(tc.n))
		}
		for i := 0; i <= tc.n; i++ {
			if got, want := v.Rank1(i), ref.rank1(i); got != want {
				t.Fatalf("n=%d d=%v: Rank1(%d)=%d want %d", tc.n, tc.density, i, got, want)
			}
		}
		for k := 1; k <= v.Ones(); k++ {
			if got, want := v.Select1(k), ref.select1(k); got != want {
				t.Fatalf("n=%d d=%v: Select1(%d)=%d want %d", tc.n, tc.density, k, got, want)
			}
		}
		if v.Select1(0) != -1 || v.Select1(v.Ones()+1) != -1 {
			t.Fatal("Select1 out-of-range should return -1")
		}
	}
}

func TestBitVectorRankSelectInverse(t *testing.T) {
	v, _ := buildRandom(t, 20000, 0.3, 99)
	for k := 1; k <= v.Ones(); k += 7 {
		pos := v.Select1(k)
		if !v.Get(pos) {
			t.Fatalf("Select1(%d)=%d is not a set bit", k, pos)
		}
		if r := v.Rank1(pos + 1); r != k {
			t.Fatalf("Rank1(Select1(%d)+1)=%d", k, r)
		}
	}
}

func TestBitVectorRank0(t *testing.T) {
	v, ref := buildRandom(t, 3000, 0.4, 5)
	for i := 0; i <= 3000; i += 13 {
		want := min(i, 3000) - ref.rank1(i)
		if got := v.Rank0(i); got != want {
			t.Fatalf("Rank0(%d)=%d want %d", i, got, want)
		}
	}
}

func TestBitVectorNextPrevSet(t *testing.T) {
	v, ref := buildRandom(t, 2048, 0.1, 11)
	for i := -1; i <= 2048; i++ {
		wantNext := -1
		for j := max(i, 0); j < len(ref); j++ {
			if ref[j] {
				wantNext = j
				break
			}
		}
		if got := v.NextSet(i); got != wantNext {
			t.Fatalf("NextSet(%d)=%d want %d", i, got, wantNext)
		}
		wantPrev := -1
		for j := min(i, len(ref)-1); j >= 0; j-- {
			if ref[j] {
				wantPrev = j
				break
			}
		}
		if got := v.PrevSet(i); got != wantPrev {
			t.Fatalf("PrevSet(%d)=%d want %d", i, got, wantPrev)
		}
	}
}

func TestBuilderSetAndGet(t *testing.T) {
	var b Builder
	b.AppendN(false, 130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Builder Set/Get mismatch")
	}
	v := b.Build()
	if v.Ones() != 3 || v.Select1(2) != 64 {
		t.Fatalf("Ones=%d Select1(2)=%d", v.Ones(), v.Select1(2))
	}
}

func TestBuilderAppendWord(t *testing.T) {
	var b Builder
	b.AppendWord(0b1011, 4)
	v := b.Build()
	want := []bool{true, true, false, true}
	for i, w := range want {
		if v.Get(i) != w {
			t.Fatalf("bit %d = %v want %v", i, v.Get(i), w)
		}
	}
}

func BenchmarkBitVectorRank1(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var bl Builder
	for i := 0; i < 1<<20; i++ {
		bl.Append(rng.Intn(2) == 0)
	}
	v := bl.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Rank1(int(uint(i*2654435761) % uint(v.Len())))
	}
}

func BenchmarkBitVectorSelect1(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var bl Builder
	for i := 0; i < 1<<20; i++ {
		bl.Append(rng.Intn(2) == 0)
	}
	v := bl.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Select1(1 + int(uint(i*2654435761)%uint(v.Ones())))
	}
}
