package bitutil

import (
	"math/rand"
	"testing"
)

// naiveBits mirrors a BitVector for cross-checking.
type naiveBits []bool

func (n naiveBits) rank1(i int) int {
	if i > len(n) {
		i = len(n)
	}
	r := 0
	for j := 0; j < i; j++ {
		if n[j] {
			r++
		}
	}
	return r
}

func (n naiveBits) select1(k int) int {
	seen := 0
	for i, b := range n {
		if b {
			seen++
			if seen == k {
				return i
			}
		}
	}
	return -1
}

func (n naiveBits) select0(k int) int {
	seen := 0
	for i, b := range n {
		if !b {
			seen++
			if seen == k {
				return i
			}
		}
	}
	return -1
}

func buildRandom(t *testing.T, n int, density float64, seed int64) (*BitVector, naiveBits) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b Builder
	ref := make(naiveBits, n)
	for i := 0; i < n; i++ {
		bit := rng.Float64() < density
		ref[i] = bit
		b.Append(bit)
	}
	return b.Build(), ref
}

func TestBitVectorRankSelectAgainstNaive(t *testing.T) {
	for _, tc := range []struct {
		n       int
		density float64
	}{
		{1, 1}, {63, 0.5}, {64, 0.5}, {65, 0.5}, {1000, 0.02},
		{5000, 0.5}, {5000, 0.95}, {4096, 0.25}, {513, 1.0}, {777, 0.0},
	} {
		v, ref := buildRandom(t, tc.n, tc.density, int64(tc.n)*31+int64(tc.density*100))
		if v.Len() != tc.n {
			t.Fatalf("Len=%d want %d", v.Len(), tc.n)
		}
		if v.Ones() != ref.rank1(tc.n) {
			t.Fatalf("n=%d d=%v: Ones=%d want %d", tc.n, tc.density, v.Ones(), ref.rank1(tc.n))
		}
		for i := 0; i <= tc.n; i++ {
			if got, want := v.Rank1(i), ref.rank1(i); got != want {
				t.Fatalf("n=%d d=%v: Rank1(%d)=%d want %d", tc.n, tc.density, i, got, want)
			}
		}
		for k := 1; k <= v.Ones(); k++ {
			if got, want := v.Select1(k), ref.select1(k); got != want {
				t.Fatalf("n=%d d=%v: Select1(%d)=%d want %d", tc.n, tc.density, k, got, want)
			}
		}
		if v.Select1(0) != -1 || v.Select1(v.Ones()+1) != -1 {
			t.Fatal("Select1 out-of-range should return -1")
		}
	}
}

func TestBitVectorSelect0AgainstNaive(t *testing.T) {
	for _, tc := range []struct {
		n       int
		density float64
	}{
		{1, 0}, {63, 0.5}, {64, 0.5}, {65, 0.5}, {1000, 0.98},
		{5000, 0.5}, {5000, 0.05}, {513, 0.0}, {777, 1.0}, {4099, 0.9},
	} {
		v, ref := buildRandom(t, tc.n, tc.density, int64(tc.n)*17+int64(tc.density*100))
		if v.Zeros() != tc.n-ref.rank1(tc.n) {
			t.Fatalf("n=%d d=%v: Zeros=%d want %d", tc.n, tc.density, v.Zeros(), tc.n-ref.rank1(tc.n))
		}
		for k := 1; k <= v.Zeros(); k++ {
			if got, want := v.Select0(k), ref.select0(k); got != want {
				t.Fatalf("n=%d d=%v: Select0(%d)=%d want %d", tc.n, tc.density, k, got, want)
			}
		}
		if v.Select0(0) != -1 || v.Select0(v.Zeros()+1) != -1 {
			t.Fatal("Select0 out-of-range should return -1")
		}
	}
}

func TestSelectEdgeCases(t *testing.T) {
	// Empty vector: every select is out of range.
	empty := new(Builder).Build()
	if empty.Select1(1) != -1 || empty.Select0(1) != -1 || empty.Select1(0) != -1 {
		t.Fatal("empty vector selects should return -1")
	}
	if empty.Rank1(0) != 0 || empty.Rank0(10) != 0 {
		t.Fatal("empty vector ranks should be 0")
	}

	// All ones: Select1(k) == k-1 across sample boundaries; no zeros.
	var ab Builder
	ab.AppendN(true, 3*selectSample+7)
	allOnes := ab.Build()
	for k := 1; k <= allOnes.Ones(); k++ {
		if got := allOnes.Select1(k); got != k-1 {
			t.Fatalf("all-ones Select1(%d)=%d want %d", k, got, k-1)
		}
	}
	if allOnes.Select0(1) != -1 {
		t.Fatal("all-ones Select0(1) should be -1")
	}

	// All zeros: mirror case.
	var zb Builder
	zb.AppendN(false, 2*selectSample+100)
	allZeros := zb.Build()
	for k := 1; k <= allZeros.Zeros(); k += 37 {
		if got := allZeros.Select0(k); got != k-1 {
			t.Fatalf("all-zeros Select0(%d)=%d want %d", k, got, k-1)
		}
	}
	if allZeros.Select1(1) != -1 {
		t.Fatal("all-zeros Select1(1) should be -1")
	}

	// Last bit set/unset: the final position must be reachable.
	var lb Builder
	lb.AppendN(false, 1000)
	lb.Append(true)
	last := lb.Build()
	if got := last.Select1(1); got != 1000 {
		t.Fatalf("last-bit Select1(1)=%d want 1000", got)
	}
	if got := last.Select0(1000); got != 999 {
		t.Fatalf("last-bit Select0(1000)=%d want 999", got)
	}

	var lz Builder
	lz.AppendN(true, 777)
	lz.Append(false)
	lastZero := lz.Build()
	if got := lastZero.Select0(1); got != 777 {
		t.Fatalf("Select0(1)=%d want 777", got)
	}

	// k out of range in both directions.
	v, _ := buildRandom(t, 4096, 0.5, 42)
	for _, k := range []int{-5, 0, v.Ones() + 1, v.Len() + 100} {
		if k >= 1 && k <= v.Ones() {
			continue
		}
		if v.Select1(k) != -1 {
			t.Fatalf("Select1(%d) should be -1", k)
		}
	}
	for _, k := range []int{-1, 0, v.Zeros() + 1} {
		if v.Select0(k) != -1 {
			t.Fatalf("Select0(%d) should be -1", k)
		}
	}
}

func TestSelectInWord(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		w := rng.Uint64()
		if trial < 64 {
			w = 1 << uint(trial) // single-bit words hit every byte lane
		}
		k := 0
		for i := 0; i < 64; i++ {
			if w&(1<<uint(i)) != 0 {
				k++
				if got := selectInWord(w, k); got != i {
					t.Fatalf("selectInWord(%#x, %d)=%d want %d", w, k, got, i)
				}
			}
		}
	}
}

func TestBitVectorRankSelectInverse(t *testing.T) {
	v, _ := buildRandom(t, 20000, 0.3, 99)
	for k := 1; k <= v.Ones(); k += 7 {
		pos := v.Select1(k)
		if !v.Get(pos) {
			t.Fatalf("Select1(%d)=%d is not a set bit", k, pos)
		}
		if r := v.Rank1(pos + 1); r != k {
			t.Fatalf("Rank1(Select1(%d)+1)=%d", k, r)
		}
	}
}

func TestBitVectorRank0(t *testing.T) {
	v, ref := buildRandom(t, 3000, 0.4, 5)
	for i := 0; i <= 3000; i += 13 {
		want := min(i, 3000) - ref.rank1(i)
		if got := v.Rank0(i); got != want {
			t.Fatalf("Rank0(%d)=%d want %d", i, got, want)
		}
	}
}

func TestBitVectorNextPrevSet(t *testing.T) {
	v, ref := buildRandom(t, 2048, 0.1, 11)
	for i := -1; i <= 2048; i++ {
		wantNext := -1
		for j := max(i, 0); j < len(ref); j++ {
			if ref[j] {
				wantNext = j
				break
			}
		}
		if got := v.NextSet(i); got != wantNext {
			t.Fatalf("NextSet(%d)=%d want %d", i, got, wantNext)
		}
		wantPrev := -1
		for j := min(i, len(ref)-1); j >= 0; j-- {
			if ref[j] {
				wantPrev = j
				break
			}
		}
		if got := v.PrevSet(i); got != wantPrev {
			t.Fatalf("PrevSet(%d)=%d want %d", i, got, wantPrev)
		}
	}
}

func TestBuilderSetAndGet(t *testing.T) {
	var b Builder
	b.AppendN(false, 130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Builder Set/Get mismatch")
	}
	v := b.Build()
	if v.Ones() != 3 || v.Select1(2) != 64 {
		t.Fatalf("Ones=%d Select1(2)=%d", v.Ones(), v.Select1(2))
	}
}

func TestBuilderAppendWord(t *testing.T) {
	var b Builder
	b.AppendWord(0b1011, 4)
	v := b.Build()
	want := []bool{true, true, false, true}
	for i, w := range want {
		if v.Get(i) != w {
			t.Fatalf("bit %d = %v want %v", i, v.Get(i), w)
		}
	}
}

func BenchmarkBitVectorRank1(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var bl Builder
	for i := 0; i < 1<<20; i++ {
		bl.Append(rng.Intn(2) == 0)
	}
	v := bl.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Rank1(int(uint(i*2654435761) % uint(v.Len())))
	}
}

func BenchmarkBitVectorSelect1(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var bl Builder
	for i := 0; i < 1<<20; i++ {
		bl.Append(rng.Intn(2) == 0)
	}
	v := bl.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Select1(1 + int(uint(i*2654435761)%uint(v.Ones())))
	}
}

func BenchmarkBitVectorSelect1Sparse(b *testing.B) {
	// 2% density exercises the superblock fallback of the select probe.
	rng := rand.New(rand.NewSource(1))
	var bl Builder
	for i := 0; i < 1<<20; i++ {
		bl.Append(rng.Intn(50) == 0)
	}
	v := bl.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Select1(1 + int(uint(i*2654435761)%uint(v.Ones())))
	}
}

func BenchmarkBitVectorSelect0(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var bl Builder
	for i := 0; i < 1<<20; i++ {
		bl.Append(rng.Intn(2) == 0)
	}
	v := bl.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Select0(1 + int(uint(i*2654435761)%uint(v.Zeros())))
	}
}
