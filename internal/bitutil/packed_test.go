package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackedArrayRoundTrip(t *testing.T) {
	for _, width := range []uint8{0, 1, 3, 7, 8, 13, 31, 32, 33, 63, 64} {
		rng := rand.New(rand.NewSource(int64(width)))
		n := 257
		vals := make([]uint64, n)
		for i := range vals {
			if width == 0 {
				vals[i] = 0
			} else if width == 64 {
				vals[i] = rng.Uint64()
			} else {
				vals[i] = rng.Uint64() & (1<<width - 1)
			}
		}
		p := NewPackedArray(vals, width)
		if p.Len() != n {
			t.Fatalf("width %d: Len=%d want %d", width, p.Len(), n)
		}
		for i, want := range vals {
			if got := p.Get(i); got != want {
				t.Fatalf("width %d: Get(%d)=%d want %d", width, i, got, want)
			}
		}
	}
}

func TestPackedArrayEmpty(t *testing.T) {
	p := NewPackedArray(nil, 17)
	if p.Len() != 0 || p.Bytes() != 0 {
		t.Fatalf("empty array: Len=%d Bytes=%d", p.Len(), p.Bytes())
	}
}

func TestPackedArrayPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for value exceeding width")
		}
	}()
	NewPackedArray([]uint64{8}, 3)
}

func TestBitsFor(t *testing.T) {
	cases := map[uint64]uint8{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, 1<<63 - 1: 63, 1 << 63: 64}
	for v, want := range cases {
		if got := BitsFor(v); got != want {
			t.Errorf("BitsFor(%d)=%d want %d", v, got, want)
		}
	}
}

func TestPackedArrayQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		for i := range vals {
			vals[i] &= 1<<37 - 1
		}
		p := NewPackedArray(vals, 37)
		got := p.AppendTo(nil)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFORArrayRoundTripAndSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, 500)
	base := uint64(1 << 40)
	cur := base
	for i := range vals {
		cur += uint64(rng.Intn(1000) + 1)
		vals[i] = cur
	}
	f := NewFORArray(vals)
	if f.Len() != len(vals) || f.Min() != vals[0] {
		t.Fatalf("Len=%d Min=%d", f.Len(), f.Min())
	}
	for i, want := range vals {
		if got := f.Get(i); got != want {
			t.Fatalf("Get(%d)=%d want %d", i, got, want)
		}
	}
	// Search must match sort.Search semantics (first index with v >= key).
	probes := []uint64{0, base, vals[0], vals[0] + 1, vals[250], vals[250] - 1, vals[499], vals[499] + 1}
	for _, key := range probes {
		want := 0
		for want < len(vals) && vals[want] < key {
			want++
		}
		if got := f.Search(key); got != want {
			t.Fatalf("Search(%d)=%d want %d", key, got, want)
		}
	}
}

func TestFORArrayConstant(t *testing.T) {
	vals := []uint64{42, 42, 42}
	f := NewFORArray(vals)
	if f.Bytes() != 8 { // width 0: only the frame
		t.Fatalf("constant FOR should cost 8 bytes, got %d", f.Bytes())
	}
	for i := range vals {
		if f.Get(i) != 42 {
			t.Fatalf("Get(%d)=%d", i, f.Get(i))
		}
	}
}

func TestFORArrayEmpty(t *testing.T) {
	f := NewFORArray(nil)
	if f.Len() != 0 || f.Search(5) != 0 {
		t.Fatal("empty FOR misbehaves")
	}
}

func TestFORArrayQuickUnsorted(t *testing.T) {
	f := func(vals []uint64) bool {
		fa := NewFORArray(vals)
		got := fa.AppendTo(nil)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackedDecodeRangeAgainstGet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Every width: the decode kernel picks between a wide absolute-position
	// path (w > 32) and a rolling-buffer path with 4/2/1-wide drains, so
	// boundary widths all deserve a pass.
	for width := uint8(0); width <= 64; width++ {
		for _, n := range []int{0, 1, 2, 15, 16, 17, 63, 64, 65, 256, 257} {
			vals := make([]uint64, n)
			for i := range vals {
				if width == 64 {
					vals[i] = rng.Uint64()
				} else if width > 0 {
					vals[i] = rng.Uint64() & (1<<width - 1)
				}
			}
			p := NewPackedArray(vals, width)
			dst := make([]uint64, n)
			// Full range plus a spread of partial windows covering word
			// boundaries and empty slices.
			ranges := [][2]int{{0, n}, {0, 0}, {n, n}}
			for trial := 0; trial < 20 && n > 0; trial++ {
				lo := rng.Intn(n + 1)
				hi := lo + rng.Intn(n+1-lo)
				ranges = append(ranges, [2]int{lo, hi})
			}
			for _, r := range ranges {
				lo, hi := r[0], r[1]
				got := p.DecodeRange(lo, hi, dst)
				if got != hi-lo {
					t.Fatalf("w=%d n=%d [%d,%d): count %d", width, n, lo, hi, got)
				}
				for i := lo; i < hi; i++ {
					if dst[i-lo] != p.Get(i) {
						t.Fatalf("w=%d n=%d [%d,%d): elem %d = %d, Get = %d",
							width, n, lo, hi, i, dst[i-lo], p.Get(i))
					}
				}
			}
		}
	}
}

func TestPackedDecodeRangePanicsOutOfBounds(t *testing.T) {
	p := NewPackedArray([]uint64{1, 2, 3}, 2)
	for _, r := range [][2]int{{-1, 2}, {0, 4}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("DecodeRange(%d,%d) did not panic", r[0], r[1])
				}
			}()
			p.DecodeRange(r[0], r[1], make([]uint64, 8))
		}()
	}
}

func TestFORDecodeRangeAgainstGet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, base := range []uint64{0, 1, 1 << 40, ^uint64(0) - 1<<20} {
		vals := make([]uint64, 300)
		for i := range vals {
			vals[i] = base + uint64(rng.Intn(1<<20))
		}
		f := NewFORArray(vals)
		dst := make([]uint64, len(vals))
		for trial := 0; trial < 50; trial++ {
			lo := rng.Intn(len(vals) + 1)
			hi := lo + rng.Intn(len(vals)+1-lo)
			f.DecodeRange(lo, hi, dst)
			for i := lo; i < hi; i++ {
				if dst[i-lo] != f.Get(i) {
					t.Fatalf("base=%d [%d,%d): elem %d = %d, Get = %d", base, lo, hi, i, dst[i-lo], f.Get(i))
				}
			}
		}
	}
}

func TestAppendToUsesBulkDecode(t *testing.T) {
	// AppendTo must round-trip through DecodeRange, preserving both the
	// existing prefix and capacity reuse.
	vals := []uint64{9, 4, 7, 1, 100, 3}
	f := NewFORArray(vals)
	dst := append(make([]uint64, 0, 32), 42)
	out := f.AppendTo(dst)
	if out[0] != 42 || len(out) != 7 {
		t.Fatalf("prefix lost: %v", out)
	}
	for i, v := range vals {
		if out[i+1] != v {
			t.Fatalf("elem %d = %d, want %d", i, out[i+1], v)
		}
	}
	if &out[0] != &dst[0] {
		t.Fatalf("AppendTo reallocated despite sufficient capacity")
	}
}
