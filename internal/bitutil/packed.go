// Package bitutil provides the succinct building blocks used throughout the
// repository: fixed-width bit-packed integer arrays, frame-of-reference
// coding for sorted and unsorted 64-bit sequences, and bit vectors with
// constant-time rank and fast select.
//
// All structures store their payload in flat []uint64 slices so that a node
// encoded with them is a small, pointer-free object: the garbage collector
// never has to trace into the packed data, which keeps compact encodings
// cheap in Go.
package bitutil

import (
	"fmt"
	"math/bits"
)

// PackedArray is an immutable array of n unsigned integers, each stored in
// exactly Width bits. Width 0 is valid and represents an array of zeros.
type PackedArray struct {
	words []uint64
	n     int
	width uint8
}

// NewPackedArray packs vals into width-bit slots. It panics if a value does
// not fit, because callers are expected to derive width via BitsFor.
func NewPackedArray(vals []uint64, width uint8) PackedArray {
	if width > 64 {
		panic("bitutil: width > 64")
	}
	p := PackedArray{n: len(vals), width: width}
	if width == 0 || len(vals) == 0 {
		return p
	}
	p.words = make([]uint64, (len(vals)*int(width)+63)/64)
	for i, v := range vals {
		if width < 64 && v>>width != 0 {
			panic(fmt.Sprintf("bitutil: value %d does not fit in %d bits", v, width))
		}
		p.set(i, v)
	}
	return p
}

// BitsFor returns the minimum width able to represent v.
func BitsFor(v uint64) uint8 {
	if v == 0 {
		return 0
	}
	return uint8(bits.Len64(v))
}

// Len returns the number of elements.
func (p *PackedArray) Len() int { return p.n }

// Width returns the per-element width in bits.
func (p *PackedArray) Width() uint8 { return p.width }

// Bytes returns the heap footprint of the packed payload in bytes.
func (p *PackedArray) Bytes() int { return len(p.words) * 8 }

func (p *PackedArray) set(i int, v uint64) {
	w := uint(p.width)
	bit := uint(i) * w
	word, off := bit/64, bit%64
	p.words[word] |= v << off
	if off+w > 64 {
		p.words[word+1] |= v >> (64 - off)
	}
}

// Get returns element i. It performs at most two word reads and a handful
// of shifts — the "additional instructions and bitwise operations" the
// paper attributes to the succinct layout.
func (p *PackedArray) Get(i int) uint64 {
	if p.width == 0 {
		return 0
	}
	w := uint(p.width)
	bit := uint(i) * w
	word, off := bit/64, bit%64
	v := p.words[word] >> off
	if off+w > 64 {
		v |= p.words[word+1] << (64 - off)
	}
	if w == 64 {
		return v
	}
	return v & (1<<w - 1)
}

// AppendTo appends all elements to dst and returns the extended slice.
func (p *PackedArray) AppendTo(dst []uint64) []uint64 {
	for i := 0; i < p.n; i++ {
		dst = append(dst, p.Get(i))
	}
	return dst
}

// errTruncated reports malformed serialized input.
var errTruncated = errorString("bitutil: truncated or corrupt serialized data")

type errorString string

func (e errorString) Error() string { return string(e) }
