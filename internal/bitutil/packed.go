// Package bitutil provides the succinct building blocks used throughout the
// repository: fixed-width bit-packed integer arrays, frame-of-reference
// coding for sorted and unsorted 64-bit sequences, and bit vectors with
// constant-time rank and fast select.
//
// All structures store their payload in flat []uint64 slices so that a node
// encoded with them is a small, pointer-free object: the garbage collector
// never has to trace into the packed data, which keeps compact encodings
// cheap in Go.
package bitutil

import (
	"fmt"
	"math/bits"
)

// PackedArray is an immutable array of n unsigned integers, each stored in
// exactly Width bits. Width 0 is valid and represents an array of zeros.
type PackedArray struct {
	words []uint64
	n     int
	width uint8
}

// NewPackedArray packs vals into width-bit slots. It panics if a value does
// not fit, because callers are expected to derive width via BitsFor.
func NewPackedArray(vals []uint64, width uint8) PackedArray {
	if width > 64 {
		panic("bitutil: width > 64")
	}
	p := PackedArray{n: len(vals), width: width}
	if width == 0 || len(vals) == 0 {
		return p
	}
	p.words = make([]uint64, (len(vals)*int(width)+63)/64)
	for i, v := range vals {
		if width < 64 && v>>width != 0 {
			panic(fmt.Sprintf("bitutil: value %d does not fit in %d bits", v, width))
		}
		p.set(i, v)
	}
	return p
}

// BitsFor returns the minimum width able to represent v.
func BitsFor(v uint64) uint8 {
	if v == 0 {
		return 0
	}
	return uint8(bits.Len64(v))
}

// Len returns the number of elements.
func (p *PackedArray) Len() int { return p.n }

// Width returns the per-element width in bits.
func (p *PackedArray) Width() uint8 { return p.width }

// Bytes returns the heap footprint of the packed payload in bytes.
func (p *PackedArray) Bytes() int { return len(p.words) * 8 }

func (p *PackedArray) set(i int, v uint64) {
	w := uint(p.width)
	bit := uint(i) * w
	word, off := bit/64, bit%64
	p.words[word] |= v << off
	if off+w > 64 {
		p.words[word+1] |= v >> (64 - off)
	}
}

// Get returns element i. It performs at most two word reads and a handful
// of shifts — the "additional instructions and bitwise operations" the
// paper attributes to the succinct layout.
func (p *PackedArray) Get(i int) uint64 {
	if p.width == 0 {
		return 0
	}
	w := uint(p.width)
	bit := uint(i) * w
	word, off := bit/64, bit%64
	v := p.words[word] >> off
	if off+w > 64 {
		v |= p.words[word+1] << (64 - off)
	}
	if w == 64 {
		return v
	}
	return v & (1<<w - 1)
}

// DecodeRange decodes elements [lo, hi) into dst (len(dst) >= hi-lo) and
// returns the count. Unlike a Get(i) loop — which recomputes the word/bit
// position and reloads the packed word for every element — the kernel
// walks the words once with a rolling bit buffer: each output element
// costs a couple of shifts, and each packed word is loaded exactly once.
// This is the bulk access the paper's compact encodings amortize over
// sequential scans.
func (p *PackedArray) DecodeRange(lo, hi int, dst []uint64) int {
	return p.DecodeRangeAdd(lo, hi, dst, 0)
}

// DecodeRangeAdd is DecodeRange with add folded into every element during
// the store. Frame-of-reference decoding rides this to rebase a whole
// window in the unpack loop itself instead of paying a second pass over
// dst (FORArray.DecodeRange).
func (p *PackedArray) DecodeRangeAdd(lo, hi int, dst []uint64, add uint64) int {
	if lo < 0 || hi > p.n || lo > hi {
		panic("bitutil: DecodeRange bounds out of range")
	}
	n := hi - lo
	if n == 0 {
		return 0
	}
	w := uint(p.width)
	if w == 0 {
		for i := 0; i < n; i++ {
			dst[i] = add
		}
		return n
	}
	mask := ^uint64(0)
	if w < 64 {
		mask = 1<<w - 1
	}
	words := p.words
	dst = dst[:n] // hoist the bound check out of the loops
	if w > 32 {
		// Wide elements (at most one per word): the rolling bit buffer
		// below would degenerate into a serial straddle chain — element
		// i+1's bits cannot be extracted until element i's leftover is
		// known. Computing each element from its absolute bit position
		// instead makes the word loads of consecutive elements
		// independent, so the out-of-order core overlaps their cache
		// misses and shift work across iterations.
		bit := uint(lo) * w
		last := n - 1
		for i := 0; i < last; i++ {
			word := bit >> 6
			off := bit & 63
			// For w > 32 every element before the last is followed by one
			// that spills into words[word+1], so the load is always in
			// range. The spill shift is split <<1<<(63-off) instead of
			// <<(64-off): both counts are provably < 64, so the compiler
			// drops the oversized-shift fixup (a compare+cmov per element),
			// and off == 0 still contributes nothing.
			v := words[word]>>off | words[word+1]<<1<<(63-off)
			dst[i] = (v & mask) + add
			bit += w
		}
		word := bit >> 6
		off := bit & 63
		v := words[word] >> off
		if off+w > 64 {
			v |= words[word+1] << (64 - off)
		}
		dst[last] = (v & mask) + add
		return n
	}
	bit := uint(lo) * w
	word := int(bit >> 6)
	off := bit & 63
	// cur holds the not-yet-consumed bits of words[word], already shifted
	// down; its top (64-avail) bits are zero.
	cur := words[word] >> off
	avail := 64 - off
	w2, w4 := 2*w, 4*w
	i := 0
	for {
		// Drain fully buffered elements, four then two at a time while the
		// buffer allows: the unrolled extracts all shift the same snapshot
		// of cur, so they issue in parallel instead of waiting on the
		// rolling cur update, and the loop branches amortize over four
		// elements. (For w > 16, 4w > 64 and the four-wide loop never
		// runs; likewise two-wide for w > 32 — handled above.)
		for avail >= w4 && n-i >= 4 {
			// Progressive shifts: every count is w itself, which the
			// surrounding branch bounds at <= 32, so the compiler proves
			// each shift in range and emits no oversized-shift fixups;
			// the extracts all pull from the chain's intermediates in
			// parallel.
			c1 := cur >> w
			c2 := c1 >> w
			c3 := c2 >> w
			dst[i] = (cur & mask) + add
			dst[i+1] = (c1 & mask) + add
			dst[i+2] = (c2 & mask) + add
			dst[i+3] = (c3 & mask) + add
			cur = c3 >> w
			avail -= w4
			i += 4
		}
		for avail >= w2 && n-i >= 2 {
			c1 := cur >> w
			dst[i] = (cur & mask) + add
			dst[i+1] = (c1 & mask) + add
			cur = c1 >> w
			avail -= w2
			i += 2
		}
		for avail >= w {
			if i == n {
				return n
			}
			dst[i] = (cur & mask) + add
			cur >>= w
			avail -= w
			i++
		}
		if i == n {
			return n
		}
		// Straddle: element i's top w-avail bits sit in the next word. At
		// this point avail < w <= 32, so the &31/&63 masks cannot change
		// either shift count — they only make the bound visible to the
		// compiler, which then drops the oversized-shift fixups.
		word++
		nw := words[word]
		dst[i] = ((cur | nw<<(avail&31)) & mask) + add
		cur = nw >> ((w - avail) & 63)
		avail += 64 - w
		i++
	}
}

// Touch reads one word per cache line of the packed payload and returns
// their sum. Callers use it as a software prefetch: issuing the loads for
// an upcoming array while unrelated work is in flight lets the misses
// overlap instead of stalling the eventual decode. The sum forces the
// loads to retire (the compiler cannot elide them).
func (p *PackedArray) Touch() uint64 {
	var s uint64
	for i := 0; i < len(p.words); i += 8 {
		s += p.words[i]
	}
	return s
}

// AppendTo appends all elements to dst and returns the extended slice.
func (p *PackedArray) AppendTo(dst []uint64) []uint64 {
	base := len(dst)
	dst = growU64(dst, p.n)
	p.DecodeRange(0, p.n, dst[base:])
	return dst
}

// growU64 extends dst by n elements, reusing capacity when possible.
func growU64(dst []uint64, n int) []uint64 {
	need := len(dst) + n
	if cap(dst) >= need {
		return dst[:need]
	}
	nd := make([]uint64, need)
	copy(nd, dst)
	return nd
}

// errTruncated reports malformed serialized input.
var errTruncated = errorString("bitutil: truncated or corrupt serialized data")

type errorString string

func (e errorString) Error() string { return string(e) }
