package bitutil

import (
	"math/bits"
	"testing"
)

// FuzzBitVectorRankSelect cross-checks the rank/select directories against
// naive scans on fuzzer-chosen bit patterns. The word payload is taken
// directly from the fuzz input so the engine can steer density, runs of
// ones/zeros, and sample-boundary alignments; tailBits trims the final
// word to exercise the phantom-zero handling of Select0.
func FuzzBitVectorRankSelect(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0xaa}, uint8(3))
	f.Add([]byte{0x01}, uint8(63))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f}, uint8(10))
	f.Fuzz(func(t *testing.T, raw []byte, tailBits uint8) {
		if len(raw) > 1<<14 {
			raw = raw[:1<<14]
		}
		var b Builder
		for _, by := range raw {
			b.AppendWord(uint64(by), 8)
		}
		n := b.Len() - int(tailBits)%64
		if n < 0 {
			n = 0
		}
		// Rebuild at the trimmed length so the final word is partial.
		var tb Builder
		for i := 0; i < n; i++ {
			tb.Append(b.Get(i))
		}
		v := tb.Build()

		ones := 0
		for i := 0; i < n; i++ {
			if v.Get(i) != b.Get(i) {
				t.Fatalf("Get(%d) mismatch", i)
			}
			if v.Rank1(i) != ones {
				t.Fatalf("Rank1(%d)=%d want %d", i, v.Rank1(i), ones)
			}
			if v.Rank0(i) != i-ones {
				t.Fatalf("Rank0(%d)=%d want %d", i, v.Rank0(i), i-ones)
			}
			if b.Get(i) {
				ones++
			}
		}
		if v.Ones() != ones || v.Zeros() != n-ones {
			t.Fatalf("Ones=%d Zeros=%d want %d %d", v.Ones(), v.Zeros(), ones, n-ones)
		}

		// Every one and zero must be found by its select; inverses hold.
		seen1, seen0 := 0, 0
		for i := 0; i < n; i++ {
			if v.Get(i) {
				seen1++
				if got := v.Select1(seen1); got != i {
					t.Fatalf("Select1(%d)=%d want %d", seen1, got, i)
				}
			} else {
				seen0++
				if got := v.Select0(seen0); got != i {
					t.Fatalf("Select0(%d)=%d want %d", seen0, got, i)
				}
			}
		}
		for _, k := range []int{0, -1, v.Ones() + 1} {
			if v.Select1(k) != -1 {
				t.Fatalf("Select1(%d) != -1", k)
			}
		}
		for _, k := range []int{0, -3, v.Zeros() + 1} {
			if v.Select0(k) != -1 {
				t.Fatalf("Select0(%d) != -1", k)
			}
		}
	})
}

// FuzzSelectInWord checks the broadword in-word select against bit clearing.
func FuzzSelectInWord(f *testing.F) {
	f.Add(uint64(1), uint8(1))
	f.Add(^uint64(0), uint8(64))
	f.Add(uint64(0x8000000000000001), uint8(2))
	f.Fuzz(func(t *testing.T, w uint64, k uint8) {
		c := bits.OnesCount64(w)
		kk := int(k)
		if c == 0 || kk < 1 {
			return
		}
		if kk > c {
			kk = c
		}
		x := w
		for i := 1; i < kk; i++ {
			x &= x - 1
		}
		want := bits.TrailingZeros64(x)
		if got := selectInWord(w, kk); got != want {
			t.Fatalf("selectInWord(%#x,%d)=%d want %d", w, kk, got, want)
		}
	})
}
