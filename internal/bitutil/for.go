package bitutil

import "math/bits"

// FORArray is a frame-of-reference coded array of uint64 values: the minimum
// (the frame) is stored once, the per-element deltas are bit-packed with the
// minimum width that fits the largest delta. Random access stays O(1), which
// is what distinguishes FOR from delta coding and what the Succinct leaf
// encoding of the paper relies on.
type FORArray struct {
	deltas PackedArray
	min    uint64
}

// NewFORArray encodes vals. The input need not be sorted; the frame is the
// minimum value. An empty input is valid. The deltas are packed directly
// from the input — no intermediate delta slice is materialized, so
// re-encoding a leaf allocates only the packed words themselves.
func NewFORArray(vals []uint64) FORArray {
	if len(vals) == 0 {
		return FORArray{}
	}
	min, max := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	width := BitsFor(max - min)
	f := FORArray{min: min, deltas: PackedArray{n: len(vals), width: width}}
	if width > 0 {
		f.deltas.words = make([]uint64, (len(vals)*int(width)+63)/64)
		for i, v := range vals {
			f.deltas.set(i, v-min)
		}
	}
	return f
}

// Len returns the number of elements.
func (f *FORArray) Len() int { return f.deltas.Len() }

// Min returns the frame (the smallest encoded value); 0 for an empty array.
func (f *FORArray) Min() uint64 { return f.min }

// Get returns element i.
func (f *FORArray) Get(i int) uint64 { return f.min + f.deltas.Get(i) }

// Bytes returns the packed payload size plus the frame.
func (f *FORArray) Bytes() int { return f.deltas.Bytes() + 8 }

// Search returns the position of the first element >= key, assuming the
// array was built from sorted input. It binary-searches directly on the
// packed representation without materializing the values.
func (f *FORArray) Search(key uint64) int {
	n := f.deltas.Len()
	if n == 0 || key <= f.min {
		return 0
	}
	target := key - f.min
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.deltas.Get(mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// skipBlock is the block length of SearchSkip: 16 deltas cover at most
// two cache lines of packed words at the widths leaf payloads use.
const skipBlock = 16

// SearchSkip returns the position of the first element >= key (assuming
// sorted input), like Search, but via a block-skip scan over the packed
// deltas instead of a binary search: the skip phase probes only the last
// delta of each 16-element block — sequential positions whose packed words
// the hardware prefetcher streams — and the in-block phase counts smaller
// deltas branchlessly. Binary search performs fewer probes, but each one
// is a data-dependent shift/mask chain the next probe must wait for; the
// skip scan's probes are independent and pipeline.
func (f *FORArray) SearchSkip(key uint64) int { return f.SearchSkipFrom(key, 0) }

// SearchSkipFrom is SearchSkip seeded with a lower bound: every element
// before position from is known to be < key, so the skip scan starts at
// from's block instead of the array head. Batched lookups exploit this —
// the keys of one sorted leaf run probe with ascending seeds, so a run's
// probes together scan the packed deltas once instead of once per key.
func (f *FORArray) SearchSkipFrom(key uint64, from int) int {
	n := f.deltas.Len()
	if n == 0 || key <= f.min {
		return 0
	}
	target := key - f.min
	b := (from / skipBlock) * skipBlock
	for ; b+skipBlock <= n; b += skipBlock {
		if f.deltas.Get(b+skipBlock-1) >= target {
			break
		}
	}
	end := b + skipBlock
	if end > n {
		end = n
	}
	// Branchless in-block count: elements < target contribute one borrow
	// each; no comparison result gates the next load.
	c := uint64(0)
	for i := b; i < end; i++ {
		_, borrow := bits.Sub64(f.deltas.Get(i), target, 0)
		c += borrow
	}
	return b + int(c)
}

// DecodeRange decodes elements [lo, hi) into dst (len(dst) >= hi-lo) and
// returns the count: one word-at-a-time pass over the packed deltas with
// the frame folded into every store (PackedArray.DecodeRangeAdd), so
// rebasing costs no second pass over dst.
func (f *FORArray) DecodeRange(lo, hi int, dst []uint64) int {
	return f.deltas.DecodeRangeAdd(lo, hi, dst, f.min)
}

// Touch prefetches the packed delta words (see PackedArray.Touch).
func (f *FORArray) Touch() uint64 { return f.deltas.Touch() }

// AppendTo appends all decoded elements to dst and returns the slice.
func (f *FORArray) AppendTo(dst []uint64) []uint64 {
	base := len(dst)
	n := f.deltas.Len()
	dst = growU64(dst, n)
	f.DecodeRange(0, n, dst[base:])
	return dst
}
