// Package hashmap provides the two sample stores of the paper's adaptation
// manager (§3.1.3): a high-performance hopscotch hash map for
// single-threaded sampling and a concurrent cuckoo hash map (4-way
// bucketized, sharded) for parallel workloads. Both are written against
// flat bucket arrays so tracking a sample does not allocate.
package hashmap

import "math/bits"

// HashU64 is a splitmix64-style finalizer, the default hash for 64-bit
// identifiers (node pointers are hashed via their numeric handle).
func HashU64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashString is an FNV-1a hash for string identifiers.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hopRange is the neighbourhood size H of hopscotch hashing.
const hopRange = 32

type hopBucket[K comparable, V any] struct {
	key      K
	val      V
	hop      uint32 // bit d: slot home+d holds an entry whose home is this bucket
	occupied bool
}

type hopKV[K comparable, V any] struct {
	key K
	val V
}

// Hopscotch is a single-threaded hopscotch hash map. Every entry lives
// within hopRange slots of its home bucket, so lookups touch at most one
// neighbourhood bitmap plus the probed slots. Entries that cannot be
// placed even after one growth step (possible only under a pathologically
// clustered hash) land in a linearly scanned overflow area instead of
// triggering unbounded growth.
type Hopscotch[K comparable, V any] struct {
	hash     func(K) uint64
	buckets  []hopBucket[K, V]
	overflow []hopKV[K, V]
	mask     uint64 // home = hash & mask; len(buckets) = mask+1+hopRange-1
	size     int
}

// NewHopscotch creates a map with at least the given capacity.
func NewHopscotch[K comparable, V any](hash func(K) uint64, capacity int) *Hopscotch[K, V] {
	n := uint64(16)
	for n < uint64(capacity)*2 {
		n *= 2
	}
	return &Hopscotch[K, V]{
		hash:    hash,
		buckets: make([]hopBucket[K, V], n+hopRange-1),
		mask:    n - 1,
	}
}

// Len returns the number of entries.
func (m *Hopscotch[K, V]) Len() int { return m.size }

// Bytes approximates the heap footprint of the bucket array.
func (m *Hopscotch[K, V]) Bytes() int {
	return (len(m.buckets) + len(m.overflow)) * bucketSize[K, V]()
}

func bucketSize[K comparable, V any]() int {
	// A conservative structural estimate: key + value + bitmap + flag,
	// rounded to alignment. Precise sizing would need unsafe.
	return 8 + 8 + 4 + 4
}

// Get returns the value stored under k.
func (m *Hopscotch[K, V]) Get(k K) (V, bool) {
	if p := m.Ref(k); p != nil {
		return *p, true
	}
	var zero V
	return zero, false
}

// Ref returns a pointer to the value stored under k, or nil. The pointer
// is invalidated by the next Put/Delete/Upsert.
func (m *Hopscotch[K, V]) Ref(k K) *V {
	home := m.hash(k) & m.mask
	for hop := m.buckets[home].hop; hop != 0; hop &= hop - 1 {
		d := uint64(bits.TrailingZeros32(hop))
		b := &m.buckets[home+d]
		if b.occupied && b.key == k {
			return &b.val
		}
	}
	for i := range m.overflow {
		if m.overflow[i].key == k {
			return &m.overflow[i].val
		}
	}
	return nil
}

// Put stores v under k, replacing any existing value.
func (m *Hopscotch[K, V]) Put(k K, v V) {
	m.Upsert(k, func(p *V, _ bool) { *p = v })
}

// Upsert invokes f with a pointer to the value stored under k, creating a
// zero value first if the key is new. created reports whether the entry
// was created by this call. This is the sampling hot path: one hash, one
// neighbourhood scan, no allocation in the common case.
func (m *Hopscotch[K, V]) Upsert(k K, f func(v *V, created bool)) {
	if p := m.Ref(k); p != nil {
		f(p, false)
		return
	}
	f(m.insert(k), true)
}

// insert creates a zero-valued entry for a key known to be absent.
func (m *Hopscotch[K, V]) insert(k K) *V {
	if p := m.place(k); p != nil {
		m.size++
		return p
	}
	// Growing only helps when the table is actually loaded; a clustered
	// hash fails placement at any size, and doubling for every such
	// failure would balloon memory. Below 50% load, overflow directly.
	if m.size >= int(m.mask+1)/2 {
		m.grow()
		if p := m.place(k); p != nil {
			m.size++
			return p
		}
	}
	m.overflow = append(m.overflow, hopKV[K, V]{key: k})
	m.size++
	return &m.overflow[len(m.overflow)-1].val
}

// place finds or frees a slot within the neighbourhood of k's home bucket
// and returns a pointer to its zeroed value, or nil if displacement fails.
func (m *Hopscotch[K, V]) place(k K) *V {
	home := m.hash(k) & m.mask
	// Find the first free slot at or after home.
	free := -1
	for j := int(home); j < len(m.buckets); j++ {
		if !m.buckets[j].occupied {
			free = j
			break
		}
	}
	if free < 0 {
		return nil
	}
	// Hopscotch displacement: move the free slot into the neighbourhood.
	for free-int(home) >= hopRange {
		moved := false
		for b := free - hopRange + 1; b < free && !moved; b++ {
			if b < 0 {
				continue
			}
			for h := m.buckets[b].hop; h != 0; h &= h - 1 {
				d := bits.TrailingZeros32(h)
				slot := b + d
				if slot >= free {
					break // bits are scanned in increasing d
				}
				m.buckets[free].key = m.buckets[slot].key
				m.buckets[free].val = m.buckets[slot].val
				m.buckets[free].occupied = true
				var zero hopBucket[K, V]
				zero.hop = m.buckets[slot].hop
				m.buckets[slot] = zero
				m.buckets[b].hop &^= 1 << uint(d)
				m.buckets[b].hop |= 1 << uint(free-b)
				free = slot
				moved = true
				break
			}
		}
		if !moved {
			return nil
		}
	}
	b := &m.buckets[free]
	b.key = k
	b.occupied = true
	var zero V
	b.val = zero
	m.buckets[home].hop |= 1 << uint(free-int(home))
	return &b.val
}

// Delete removes k and reports whether it was present.
func (m *Hopscotch[K, V]) Delete(k K) bool {
	home := m.hash(k) & m.mask
	for h := m.buckets[home].hop; h != 0; h &= h - 1 {
		d := bits.TrailingZeros32(h)
		b := &m.buckets[home+uint64(d)]
		if b.occupied && b.key == k {
			var zero hopBucket[K, V]
			zero.hop = b.hop
			*b = zero
			m.buckets[home].hop &^= 1 << uint(d)
			m.size--
			return true
		}
	}
	for i := range m.overflow {
		if m.overflow[i].key == k {
			last := len(m.overflow) - 1
			m.overflow[i] = m.overflow[last]
			m.overflow = m.overflow[:last]
			m.size--
			return true
		}
	}
	return false
}

// Range calls f for every entry until f returns false. The value pointer
// may be mutated in place; keys must not be changed.
func (m *Hopscotch[K, V]) Range(f func(k K, v *V) bool) {
	for i := range m.buckets {
		if m.buckets[i].occupied {
			if !f(m.buckets[i].key, &m.buckets[i].val) {
				return
			}
		}
	}
	for i := range m.overflow {
		if !f(m.overflow[i].key, &m.overflow[i].val) {
			return
		}
	}
}

// Clear removes all entries, keeping table capacity.
func (m *Hopscotch[K, V]) Clear() {
	for i := range m.buckets {
		m.buckets[i] = hopBucket[K, V]{}
	}
	m.overflow = m.overflow[:0]
	m.size = 0
}

func (m *Hopscotch[K, V]) grow() {
	old := m.buckets
	oldOverflow := m.overflow
	n := (m.mask + 1) * 2
	m.buckets = make([]hopBucket[K, V], n+hopRange-1)
	m.overflow = nil
	m.mask = n - 1
	reinsert := func(k K, v V) {
		p := m.place(k)
		if p == nil {
			m.overflow = append(m.overflow, hopKV[K, V]{key: k, val: v})
			return
		}
		*p = v
	}
	for i := range old {
		if old[i].occupied {
			reinsert(old[i].key, old[i].val)
		}
	}
	for i := range oldOverflow {
		reinsert(oldOverflow[i].key, oldOverflow[i].val)
	}
}
