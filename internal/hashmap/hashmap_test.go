package hashmap

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestHopscotchBasic(t *testing.T) {
	m := NewHopscotch[uint64, int](HashU64, 8)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map returned a value")
	}
	m.Put(1, 100)
	m.Put(2, 200)
	m.Put(1, 101)
	if v, ok := m.Get(1); !ok || v != 101 {
		t.Fatalf("Get(1)=%d,%v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len=%d", m.Len())
	}
	if !m.Delete(1) || m.Delete(1) {
		t.Fatal("Delete semantics wrong")
	}
	if m.Len() != 1 {
		t.Fatalf("Len after delete=%d", m.Len())
	}
}

func TestHopscotchAgainstGoMap(t *testing.T) {
	m := NewHopscotch[uint64, uint64](HashU64, 4)
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(77))
	for op := 0; op < 200000; op++ {
		k := uint64(rng.Intn(5000))
		switch rng.Intn(4) {
		case 0, 1: // put
			v := rng.Uint64()
			m.Put(k, v)
			ref[k] = v
		case 2: // delete
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d)=%v want %v", op, k, got, want)
			}
			delete(ref, k)
		case 3: // get
			got, ok := m.Get(k)
			want, wok := ref[k]
			if ok != wok || got != want {
				t.Fatalf("op %d: Get(%d)=(%d,%v) want (%d,%v)", op, k, got, ok, want, wok)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len=%d want %d", op, m.Len(), len(ref))
		}
	}
	// Full sweep.
	for k, want := range ref {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("final Get(%d)=(%d,%v) want %d", k, got, ok, want)
		}
	}
	count := 0
	m.Range(func(k uint64, v *uint64) bool {
		if ref[k] != *v {
			t.Fatalf("Range mismatch at %d", k)
		}
		count++
		return true
	})
	if count != len(ref) {
		t.Fatalf("Range visited %d of %d", count, len(ref))
	}
}

func TestHopscotchUpsert(t *testing.T) {
	m := NewHopscotch[uint64, int](HashU64, 4)
	m.Upsert(5, func(v *int, created bool) {
		if !created {
			t.Fatal("first upsert must create")
		}
		*v = 1
	})
	m.Upsert(5, func(v *int, created bool) {
		if created {
			t.Fatal("second upsert must not create")
		}
		*v++
	})
	if v, _ := m.Get(5); v != 2 {
		t.Fatalf("v=%d", v)
	}
}

func TestHopscotchAdversarialHash(t *testing.T) {
	// All keys collide into a tiny set of home buckets: exercises
	// displacement and forced growth.
	badHash := func(k uint64) uint64 { return k % 3 }
	m := NewHopscotch[uint64, uint64](badHash, 4)
	for i := uint64(0); i < 500; i++ {
		m.Put(i, i*7)
	}
	for i := uint64(0); i < 500; i++ {
		if v, ok := m.Get(i); !ok || v != i*7 {
			t.Fatalf("Get(%d)=(%d,%v)", i, v, ok)
		}
	}
}

func TestHopscotchClear(t *testing.T) {
	m := NewHopscotch[uint64, int](HashU64, 4)
	for i := uint64(0); i < 100; i++ {
		m.Put(i, int(i))
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatal("Clear failed")
	}
	if _, ok := m.Get(5); ok {
		t.Fatal("entry survived Clear")
	}
}

func TestHopscotchQuick(t *testing.T) {
	fn := func(keys []uint64) bool {
		m := NewHopscotch[uint64, int](HashU64, 2)
		ref := map[uint64]int{}
		for i, k := range keys {
			m.Put(k, i)
			ref[k] = i
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			if got, ok := m.Get(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCuckooBasic(t *testing.T) {
	m := NewCuckoo[uint64, int](HashU64, 16, 4)
	m.Put(1, 10)
	m.Put(2, 20)
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1)=(%d,%v)", v, ok)
	}
	if !m.Delete(1) || m.Delete(1) {
		t.Fatal("Delete semantics")
	}
	if m.Len() != 1 {
		t.Fatalf("Len=%d", m.Len())
	}
}

func TestCuckooAgainstGoMap(t *testing.T) {
	m := NewCuckoo[uint64, uint64](HashU64, 8, 2)
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(5))
	for op := 0; op < 100000; op++ {
		k := uint64(rng.Intn(3000))
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Uint64()
			m.Put(k, v)
			ref[k] = v
		case 2:
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d)=%v want %v", op, k, got, want)
			}
			delete(ref, k)
		case 3:
			got, ok := m.Get(k)
			want, wok := ref[k]
			if ok != wok || got != want {
				t.Fatalf("op %d: Get(%d)=(%d,%v) want (%d,%v)", op, k, got, ok, want, wok)
			}
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", m.Len(), len(ref))
	}
	seen := 0
	m.Range(func(k uint64, v *uint64) bool {
		if ref[k] != *v {
			t.Fatalf("Range mismatch at %d", k)
		}
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("Range visited %d of %d", seen, len(ref))
	}
}

func TestCuckooEvictionPressure(t *testing.T) {
	// Small initial capacity with many inserts forces kick chains and growth.
	m := NewCuckoo[uint64, uint64](HashU64, 4, 1)
	const n = 20000
	for i := uint64(0); i < n; i++ {
		m.Put(i, i)
	}
	if m.Len() != n {
		t.Fatalf("Len=%d want %d", m.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := m.Get(i); !ok || v != i {
			t.Fatalf("Get(%d)=(%d,%v)", i, v, ok)
		}
	}
}

func TestCuckooConcurrent(t *testing.T) {
	m := NewCuckoo[uint64, uint64](HashU64, 1024, 16)
	const workers = 8
	const perWorker = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 32
			for i := uint64(0); i < perWorker; i++ {
				k := base | i
				m.Upsert(k, func(v *uint64, created bool) { *v = k * 3 })
				if i%3 == 0 {
					if v, ok := m.Get(k); !ok || v != k*3 {
						t.Errorf("worker %d: Get(%d) mismatch", w, k)
						return
					}
				}
				if i%7 == 0 {
					m.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	want := workers * (perWorker - (perWorker+6)/7)
	if m.Len() != want {
		t.Fatalf("Len=%d want %d", m.Len(), want)
	}
}

func TestCuckooUpsertCounter(t *testing.T) {
	m := NewCuckoo[uint64, int](HashU64, 64, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				m.Upsert(42, func(v *int, _ bool) { *v++ })
			}
		}()
	}
	wg.Wait()
	if v, _ := m.Get(42); v != 80000 {
		t.Fatalf("counter=%d want 80000", v)
	}
}

func TestCuckooClear(t *testing.T) {
	m := NewCuckoo[uint64, int](HashU64, 16, 2)
	for i := uint64(0); i < 100; i++ {
		m.Put(i, 1)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestHashStringDistinct(t *testing.T) {
	if HashString("foo") == HashString("bar") {
		t.Fatal("suspicious collision")
	}
	if HashString("") == 0 {
		t.Fatal("empty string should hash to FNV offset basis")
	}
}

func BenchmarkHopscotchUpsert(b *testing.B) {
	m := NewHopscotch[uint64, uint64](HashU64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Upsert(uint64(i)%(1<<16), func(v *uint64, _ bool) { *v++ })
	}
}

func BenchmarkCuckooUpsertParallel(b *testing.B) {
	m := NewCuckoo[uint64, uint64](HashU64, 1<<16, 64)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			m.Upsert(i%(1<<16), func(v *uint64, _ bool) { *v++ })
		}
	})
}
