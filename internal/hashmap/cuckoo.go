package hashmap

import "sync"

// cuckooSlots is the bucket associativity (4-way, as in libcuckoo).
const cuckooSlots = 4

// maxCuckooKicks bounds the eviction path length before a shard resizes.
const maxCuckooKicks = 64

type cuckooEntry[K comparable, V any] struct {
	hash uint64
	key  K
	val  V
	used bool
}

type cuckooBucket[K comparable, V any] struct {
	slots [cuckooSlots]cuckooEntry[K, V]
}

// cuckooTable is a single-shard, non-thread-safe 4-way cuckoo hash table
// with two derived bucket indexes per key.
type cuckooTable[K comparable, V any] struct {
	buckets []cuckooBucket[K, V]
	mask    uint64
	size    int
}

func newCuckooTable[K comparable, V any](capacity int) *cuckooTable[K, V] {
	n := uint64(4)
	for int(n)*cuckooSlots < capacity*2 {
		n *= 2
	}
	return &cuckooTable[K, V]{buckets: make([]cuckooBucket[K, V], n), mask: n - 1}
}

func (t *cuckooTable[K, V]) idx(h uint64) (uint64, uint64) {
	b1 := h & t.mask
	// The alternate bucket is derived from the upper hash bits so that it
	// is stable under key movement (libcuckoo's partial-key style).
	b2 := (h >> 32) & t.mask
	if b2 == b1 {
		b2 = (b1 + 1) & t.mask
	}
	return b1, b2
}

func (t *cuckooTable[K, V]) ref(h uint64, k K) *V {
	b1, b2 := t.idx(h)
	for _, b := range [2]uint64{b1, b2} {
		bk := &t.buckets[b]
		for i := range bk.slots {
			s := &bk.slots[i]
			if s.used && s.hash == h && s.key == k {
				return &s.val
			}
		}
	}
	return nil
}

// upsert returns the value slot for key k, growing on failure.
func (t *cuckooTable[K, V]) upsert(h uint64, k K) (*V, bool) {
	if p := t.ref(h, k); p != nil {
		return p, false
	}
	for {
		if p := t.insertNew(h, k); p != nil {
			t.size++
			return p, true
		}
		t.grow()
	}
}

func (t *cuckooTable[K, V]) insertNew(h uint64, k K) *V {
	b1, b2 := t.idx(h)
	for _, b := range [2]uint64{b1, b2} {
		bk := &t.buckets[b]
		for i := range bk.slots {
			if !bk.slots[i].used {
				bk.slots[i] = cuckooEntry[K, V]{hash: h, key: k, used: true}
				return &bk.slots[i].val
			}
		}
	}
	// Both buckets full: evict along a random-walk cuckoo path.
	curHash, curKey := h, k
	var curVal V
	victim := b1
	for kick := 0; kick < maxCuckooKicks; kick++ {
		bk := &t.buckets[victim]
		slot := &bk.slots[kick%cuckooSlots]
		evHash, evKey, evVal := slot.hash, slot.key, slot.val
		slot.hash, slot.key, slot.val = curHash, curKey, curVal
		// The displaced entry moves to its alternate bucket.
		e1, e2 := t.idx(evHash)
		alt := e1
		if victim == e1 {
			alt = e2
		}
		abk := &t.buckets[alt]
		for i := range abk.slots {
			if !abk.slots[i].used {
				abk.slots[i] = cuckooEntry[K, V]{hash: evHash, key: evKey, val: evVal, used: true}
				return t.ref(h, k)
			}
		}
		curHash, curKey, curVal = evHash, evKey, evVal
		victim = alt
	}
	// Path too long: undo is unnecessary (the displaced chain is still all
	// stored except the final carrier); re-insert the carrier after growth.
	t.growInto(curHash, curKey, curVal)
	return t.ref(h, k)
}

func (t *cuckooTable[K, V]) grow() {
	old := t.buckets
	t.buckets = make([]cuckooBucket[K, V], len(old)*2)
	t.mask = uint64(len(t.buckets) - 1)
	t.size = 0
	for i := range old {
		for s := range old[i].slots {
			e := &old[i].slots[s]
			if e.used {
				p, _ := t.upsert(e.hash, e.key)
				*p = e.val
			}
		}
	}
}

// growInto grows the table and inserts the carried-over entry.
func (t *cuckooTable[K, V]) growInto(h uint64, k K, v V) {
	t.grow()
	p, created := t.upsert(h, k)
	*p = v
	if created {
		// size was bumped by upsert; the carrier was already counted by the
		// caller's size++ after insertNew returns, so compensate here.
		t.size--
	}
}

func (t *cuckooTable[K, V]) delete(h uint64, k K) bool {
	b1, b2 := t.idx(h)
	for _, b := range [2]uint64{b1, b2} {
		bk := &t.buckets[b]
		for i := range bk.slots {
			s := &bk.slots[i]
			if s.used && s.hash == h && s.key == k {
				*s = cuckooEntry[K, V]{}
				t.size--
				return true
			}
		}
	}
	return false
}

// Cuckoo is the concurrent sample store used by the GS (global sampling)
// strategy: a sharded, 4-way bucketized cuckoo hash map. Readers and
// writers contend only within a shard; the adaptation phase locks all
// shards (the paper's "the map gets locked globally to process each
// sample") via Range.
type Cuckoo[K comparable, V any] struct {
	hash   func(K) uint64
	shards []cuckooShard[K, V]
	mask   uint64
}

type cuckooShard[K comparable, V any] struct {
	mu    sync.Mutex
	table *cuckooTable[K, V]
	_     [40]byte // pad to a cache line to avoid false sharing
}

// NewCuckoo creates a concurrent map with the given total capacity spread
// over shards (a power of two, at least 1).
func NewCuckoo[K comparable, V any](hash func(K) uint64, capacity, shards int) *Cuckoo[K, V] {
	n := 1
	for n < shards {
		n *= 2
	}
	c := &Cuckoo[K, V]{hash: hash, shards: make([]cuckooShard[K, V], n), mask: uint64(n - 1)}
	per := capacity/n + 1
	for i := range c.shards {
		c.shards[i].table = newCuckooTable[K, V](per)
	}
	return c
}

func (c *Cuckoo[K, V]) shard(h uint64) *cuckooShard[K, V] {
	// Shard by high bits; in-shard bucket indexes use low bits.
	return &c.shards[(h>>48)&c.mask]
}

// Get returns the value stored under k.
func (c *Cuckoo[K, V]) Get(k K) (V, bool) {
	h := c.hash(k)
	s := c.shard(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.table.ref(h, k); p != nil {
		return *p, true
	}
	var zero V
	return zero, false
}

// Put stores v under k.
func (c *Cuckoo[K, V]) Put(k K, v V) {
	h := c.hash(k)
	s := c.shard(h)
	s.mu.Lock()
	p, _ := s.table.upsert(h, k)
	*p = v
	s.mu.Unlock()
}

// Upsert invokes f with the value slot for k under the shard lock.
func (c *Cuckoo[K, V]) Upsert(k K, f func(v *V, created bool)) {
	h := c.hash(k)
	s := c.shard(h)
	s.mu.Lock()
	p, created := s.table.upsert(h, k)
	f(p, created)
	s.mu.Unlock()
}

// Delete removes k and reports whether it was present.
func (c *Cuckoo[K, V]) Delete(k K) bool {
	h := c.hash(k)
	s := c.shard(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.delete(h, k)
}

// Len returns the entry count (consistent only when writers are quiet).
func (c *Cuckoo[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.table.size
		s.mu.Unlock()
	}
	return n
}

// Range calls f for every entry, locking one shard at a time. Mutating the
// value through the pointer is allowed; inserting or deleting from within
// f is not.
func (c *Cuckoo[K, V]) Range(f func(k K, v *V) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for b := range s.table.buckets {
			for sl := range s.table.buckets[b].slots {
				e := &s.table.buckets[b].slots[sl]
				if e.used {
					if !f(e.key, &e.val) {
						s.mu.Unlock()
						return
					}
				}
			}
		}
		s.mu.Unlock()
	}
}

// Clear removes all entries.
func (c *Cuckoo[K, V]) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for b := range s.table.buckets {
			s.table.buckets[b] = cuckooBucket[K, V]{}
		}
		s.table.size = 0
		s.mu.Unlock()
	}
}

// Bytes approximates the heap footprint of all shard tables.
func (c *Cuckoo[K, V]) Bytes() int {
	_, b := c.Stats()
	return b
}

// Stats returns the entry count and approximate byte footprint from one
// pass over the shards, reading both figures under the same shard lock.
// Calling Len and Bytes back to back instead makes two passes, and a
// delete landing between them yields a (size, bytes) pair no single
// moment ever exhibited.
func (c *Cuckoo[K, V]) Stats() (size, bytes int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		size += s.table.size
		bytes += len(s.table.buckets) * cuckooSlots * bucketSize[K, V]()
		s.mu.Unlock()
	}
	return size, bytes
}
