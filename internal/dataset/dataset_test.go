package dataset

import (
	"sort"
	"strings"
	"testing"
)

func assertSortedUniqueU64(t *testing.T, keys []uint64) {
	t.Helper()
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("keys not strictly increasing at %d: %d <= %d", i, keys[i], keys[i-1])
		}
	}
}

func TestOSMProperties(t *testing.T) {
	keys := OSM(50000, 1)
	if len(keys) != 50000 {
		t.Fatalf("len=%d", len(keys))
	}
	assertSortedUniqueU64(t, keys)
	// Determinism.
	again := OSM(50000, 1)
	for i := range keys {
		if keys[i] != again[i] {
			t.Fatal("OSM not deterministic")
		}
	}
	// Different seed differs.
	other := OSM(50000, 2)
	same := 0
	for i := range keys {
		if keys[i] == other[i] {
			same++
		}
	}
	if same > len(keys)/10 {
		t.Fatalf("seeds too similar: %d identical", same)
	}
	// Clustering: median gap must be far below the mean gap.
	gaps := make([]uint64, len(keys)-1)
	var sum float64
	for i := 1; i < len(keys); i++ {
		gaps[i-1] = keys[i] - keys[i-1]
		sum += float64(gaps[i-1])
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	median := float64(gaps[len(gaps)/2])
	mean := sum / float64(len(gaps))
	if median*10 > mean {
		t.Fatalf("no clustering: median gap %.0f vs mean %.0f", median, mean)
	}
}

func TestConsecutive(t *testing.T) {
	keys := ConsecutiveU64(100, 5)
	if keys[0] != 5 || keys[99] != 104 {
		t.Fatalf("range [%d,%d]", keys[0], keys[99])
	}
	assertSortedUniqueU64(t, keys)
}

func TestUserIDs(t *testing.T) {
	keys := UserIDs(30000, 3)
	if len(keys) != 30000 {
		t.Fatalf("len=%d", len(keys))
	}
	assertSortedUniqueU64(t, keys)
}

func TestEmails(t *testing.T) {
	emails := Emails(20000, 4)
	if len(emails) != 20000 {
		t.Fatalf("len=%d", len(emails))
	}
	var total int
	for i, e := range emails {
		if i > 0 && emails[i] <= emails[i-1] {
			t.Fatalf("emails not strictly sorted at %d: %q <= %q", i, emails[i], emails[i-1])
		}
		if !strings.Contains(e, "@") {
			t.Fatalf("malformed email %q", e)
		}
		if strings.IndexByte(e, 0) >= 0 {
			t.Fatalf("email contains NUL: %q", e)
		}
		total += len(e)
	}
	avg := float64(total) / float64(len(emails))
	if avg < 15 || avg > 30 {
		t.Fatalf("average length %.1f outside plausible range around 22", avg)
	}
	// Host reversal: many emails share a leading domain prefix.
	gmail := 0
	for _, e := range emails {
		if strings.HasPrefix(e, "gmail.com@") {
			gmail++
		}
	}
	if gmail < len(emails)/100 {
		t.Fatalf("domain clustering missing: %d gmail prefixes", gmail)
	}
}

func TestYCSBKeys(t *testing.T) {
	keys := YCSBKeys(10000, 9)
	if len(keys) != 10000 {
		t.Fatalf("len=%d", len(keys))
	}
	assertSortedUniqueU64(t, keys)
}

func TestKeyBytesOrderPreserving(t *testing.T) {
	pairs := [][2]uint64{{0, 1}, {255, 256}, {1 << 32, 1<<32 + 1}, {1<<64 - 2, 1<<64 - 1}}
	for _, p := range pairs {
		a, b := KeyBytes(p[0]), KeyBytes(p[1])
		if string(a) >= string(b) {
			t.Fatalf("order not preserved for %d < %d", p[0], p[1])
		}
		if len(a) != 8 {
			t.Fatal("key bytes must be 8 long")
		}
	}
	if string(AppendKeyBytes(nil, 77)) != string(KeyBytes(77)) {
		t.Fatal("AppendKeyBytes mismatch")
	}
}
