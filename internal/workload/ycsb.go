package workload

// The paper derives W4 from a custom YCSB configuration (Cooper et al.,
// SoCC 2010). For completeness — and because downstream users benchmark
// against the standard mixes — this file declares the six core YCSB
// workloads as Specs. Reads, updates and read-modify-write all select keys
// Zipfian (YCSB's default request distribution); inserts extend the key
// space; scans use YCSB's default max length of 100.
//
// Operation-kind mapping: YCSB UPDATE and READ-MODIFY-WRITE are modeled as
// OpInsert on an existing key (an overwrite) since the index layer treats
// both as a value write; YCSB INSERT is OpInsert as well (the runner
// derives fresh keys). This preserves the read/write ratios, which is what
// the encodings react to.
var (
	// YCSBA: update heavy (50/50 reads and updates) — "session store".
	YCSBA = Spec{Name: "YCSB-A", ZipfAlpha: 0.99,
		Mix: []Mix{{0.50, OpRead, DistZipfian}, {0.50, OpInsert, DistZipfian}}}
	// YCSBB: read mostly (95/5) — "photo tagging".
	YCSBB = Spec{Name: "YCSB-B", ZipfAlpha: 0.99,
		Mix: []Mix{{0.95, OpRead, DistZipfian}, {0.05, OpInsert, DistZipfian}}}
	// YCSBC: read only — "user profile cache".
	YCSBC = Spec{Name: "YCSB-C", ZipfAlpha: 0.99,
		Mix: []Mix{{1.0, OpRead, DistZipfian}}}
	// YCSBD: read latest — new keys inserted and immediately read. The
	// "latest" distribution is approximated by Zipfian over the most
	// recently inserted region (hot set at the top of the key space).
	YCSBD = Spec{Name: "YCSB-D", ZipfAlpha: 0.99, HotSize: 0.05, HotFrac: 0.9,
		Mix: []Mix{{0.95, OpRead, DistHotSet}, {0.05, OpInsert, DistHotSet}}}
	// YCSBE: short ranges (95% scans, 5% inserts) — "threaded
	// conversations". Scan length uniform up to 100 (YCSB default).
	YCSBE = Spec{Name: "YCSB-E", ZipfAlpha: 0.99, ScanMin: 1, ScanMax: 100,
		Mix: []Mix{{0.95, OpScan, DistZipfian}, {0.05, OpInsert, DistZipfian}}}
	// YCSBF: read-modify-write (50/50) — "user database".
	YCSBF = Spec{Name: "YCSB-F", ZipfAlpha: 0.99,
		Mix: []Mix{{0.50, OpRead, DistZipfian}, {0.50, OpInsert, DistZipfian}}}
	// YCSBELong: the scan-serving stress variant of E. Standard YCSB-E
	// caps scans at 100 keys, which rarely leaves a single leaf; the long
	// variant draws lengths uniform in [256, 1024] — multi-leaf ranges
	// where the bulk decode kernels and fused batch walk dominate — while
	// keeping E's 95/5 scan/insert mix and Zipfian starts. This is the
	// range analogue the scan experiment records.
	YCSBELong = Spec{Name: "YCSB-E-long", ZipfAlpha: 0.99, ScanMin: 256, ScanMax: 1024,
		Mix: []Mix{{0.95, OpScan, DistZipfian}, {0.05, OpInsert, DistZipfian}}}
)

// YCSBSpecs lists the six core workloads by letter.
var YCSBSpecs = map[string]Spec{
	"A": YCSBA, "B": YCSBB, "C": YCSBC, "D": YCSBD, "E": YCSBE, "F": YCSBF,
	"E-long": YCSBELong,
}
