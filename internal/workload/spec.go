package workload

import "math/rand"

// OpKind is the query type of one generated operation.
type OpKind uint8

// Operation kinds, matching the read/scan/insert columns of Table 3.
const (
	OpRead OpKind = iota
	OpScan
	OpInsert
)

// Op is one generated index operation. Index selects a key from the
// dataset's sorted key array; for scans, ScanLen keys are read starting at
// Index; for inserts, the key is derived from Index (dataset-specific).
type Op struct {
	Index   int
	ScanLen int
	Kind    OpKind
}

// DistKind names a key-selection distribution in a Spec.
type DistKind uint8

// Distribution kinds of Table 3.
const (
	DistUniform DistKind = iota
	DistZipfian
	DistNormal
	DistLognormal
	DistPrefixRandom
	DistHotSet
)

// Mix is one (fraction, kind, distribution) row of a workload.
type Mix struct {
	Frac float64
	Kind OpKind
	Dist DistKind
}

// Spec declares a workload in the style of the paper's Table 3.
type Spec struct {
	Name string
	Mix  []Mix
	// ScanMin/ScanMax bound the uniformly distributed scan length
	// ([10, 50] for most workloads, [100, 250] for W4).
	ScanMin, ScanMax int
	// Zipf skew (paper: a ∈ [1, 1.5]); used by Zipfian mixes.
	ZipfAlpha float64
	// Normal / Lognormal parameters.
	NormalMu, NormalSigma float64
	LogMu, LogSigma       float64
	// HotSet parameters (W4).
	HotSize, HotFrac float64
	// PrefixRandom parameters (W3).
	Prefix PrefixRandomConfig
}

// The workloads of Table 3. Fractions follow the paper; distribution
// parameters use the defaults of §5.1 (Zipf a = 1, Normal(0.5, 0.03),
// Lognormal(0, 0.1), scan length U[10,50] / U[100,250] for W4).
var (
	W11 = Spec{Name: "W1.1", ZipfAlpha: 1, ScanMin: 10, ScanMax: 50,
		NormalMu: 0.5, NormalSigma: 0.03, LogMu: 0, LogSigma: 0.1,
		Mix: []Mix{{0.49, OpRead, DistZipfian}, {0.49, OpScan, DistZipfian}, {0.02, OpInsert, DistZipfian}}}
	W12 = Spec{Name: "W1.2", ZipfAlpha: 1, ScanMin: 10, ScanMax: 50,
		NormalMu: 0.5, NormalSigma: 0.03, LogMu: 0, LogSigma: 0.1,
		Mix: []Mix{{0.49, OpRead, DistNormal}, {0.49, OpScan, DistNormal}, {0.02, OpInsert, DistZipfian}}}
	W13 = Spec{Name: "W1.3", ZipfAlpha: 1, ScanMin: 10, ScanMax: 50,
		NormalMu: 0.5, NormalSigma: 0.03, LogMu: 0, LogSigma: 0.1,
		Mix: []Mix{{0.49, OpRead, DistLognormal}, {0.49, OpScan, DistLognormal}, {0.02, OpInsert, DistLognormal}}}
	// The W2 row of Table 3 is garbled in the available paper text ("94%
	// Uniform / 20% Lognormal / 56% Lognormal" cannot sum to 1); we keep
	// the documented intent — uniform-dominated reads with lognormal scans
	// and inserts — and normalize the mix. See DESIGN.md.
	W2 = Spec{Name: "W2", ZipfAlpha: 1, ScanMin: 10, ScanMax: 50,
		LogMu: 0, LogSigma: 0.1,
		Mix: []Mix{{0.94, OpRead, DistUniform}, {0.02, OpScan, DistLognormal}, {0.04, OpInsert, DistLognormal}}}
	W3 = Spec{Name: "W3", ScanMin: 10, ScanMax: 50,
		Prefix: PrefixRandomConfig{Groups: 128, HotGroups: 8, Phases: 2, HotFraction: 0.95},
		Mix:    []Mix{{1.0, OpRead, DistPrefixRandom}}}
	W4 = Spec{Name: "W4", ZipfAlpha: 1, ScanMin: 100, ScanMax: 250,
		HotSize: 0.01, HotFrac: 0.99,
		Mix: []Mix{{0.75, OpRead, DistZipfian}, {0.25, OpScan, DistZipfian}}}
	W51 = Spec{Name: "W5.1", ZipfAlpha: 1, ScanMin: 10, ScanMax: 50,
		Mix: []Mix{{0.20, OpRead, DistZipfian}, {0.80, OpInsert, DistZipfian}}}
	W52 = Spec{Name: "W5.2", ZipfAlpha: 1, ScanMin: 10, ScanMax: 50,
		Mix: []Mix{{0.20, OpRead, DistZipfian}, {0.80, OpScan, DistZipfian}}}
	W61 = Spec{Name: "W6.1", ZipfAlpha: 1,
		Mix: []Mix{{1.0, OpRead, DistZipfian}}}
	W62 = Spec{Name: "W6.2", ZipfAlpha: 1, ScanMin: 10, ScanMax: 50,
		Mix: []Mix{{1.0, OpScan, DistZipfian}}}
)

// Specs lists all Table 3 workloads by name.
var Specs = map[string]Spec{
	"W1.1": W11, "W1.2": W12, "W1.3": W13, "W2": W2, "W3": W3,
	"W4": W4, "W5.1": W51, "W5.2": W52, "W6.1": W61, "W6.2": W62,
}

// Generator turns a Spec into a stream of Ops over an n-key index.
type Generator struct {
	spec   Spec
	rng    *rand.Rand
	dists  []Dist
	cum    []float64 // cumulative mix fractions, normalized
	prefix *PrefixRandom
}

// NewGenerator builds a generator for spec over n keys. Concurrent workers
// should each create their own generator with distinct seeds.
func NewGenerator(spec Spec, n int, seed int64) *Generator {
	g := &Generator{spec: spec, rng: rand.New(rand.NewSource(seed))}
	total := 0.0
	for _, m := range spec.Mix {
		total += m.Frac
	}
	cum := 0.0
	for i, m := range spec.Mix {
		g.dists = append(g.dists, g.makeDist(m.Dist, n, seed+int64(i)*7919+1))
		cum += m.Frac / total
		g.cum = append(g.cum, cum)
	}
	return g
}

func (g *Generator) makeDist(k DistKind, n int, seed int64) Dist {
	switch k {
	case DistZipfian:
		return NewZipf(n, g.spec.ZipfAlpha, seed)
	case DistNormal:
		return NewNormal(n, g.spec.NormalMu, g.spec.NormalSigma, seed)
	case DistLognormal:
		return NewLognormal(n, g.spec.LogMu, g.spec.LogSigma, seed)
	case DistPrefixRandom:
		if g.prefix == nil {
			g.prefix = NewPrefixRandom(n, g.spec.Prefix)
		}
		return g.prefix
	case DistHotSet:
		return NewHotSet(n, 0, g.spec.HotSize, g.spec.HotFrac, seed)
	default:
		return NewUniform(n, seed)
	}
}

// SetPhase forwards a phase switch to an embedded PrefixRandom dist (W3).
func (g *Generator) SetPhase(p int) {
	if g.prefix != nil {
		g.prefix.SetPhase(p)
	}
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	u := g.rng.Float64()
	i := 0
	for i < len(g.cum)-1 && u > g.cum[i] {
		i++
	}
	m := g.spec.Mix[i]
	op := Op{Kind: m.Kind, Index: g.dists[i].Draw()}
	if m.Kind == OpScan {
		lo, hi := g.spec.ScanMin, g.spec.ScanMax
		if hi <= lo {
			op.ScanLen = max(lo, 1)
		} else {
			op.ScanLen = lo + g.rng.Intn(hi-lo+1)
		}
	}
	return op
}

// Fill generates len(dst) operations into dst (amortizes interface calls in
// benchmark loops) and returns dst.
func (g *Generator) Fill(dst []Op) []Op {
	for i := range dst {
		dst[i] = g.Next()
	}
	return dst
}
