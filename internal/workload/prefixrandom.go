package workload

import (
	"math/rand"
	"sort"
)

// PrefixRandom reproduces the dbbench "prefix-random" characteristic that
// Cao et al. extracted from Facebook's RocksDB workloads and that the paper
// uses as W3: keys are grouped into ranges by their most significant prefix
// bits, a small fraction of ranges is hot, and accesses are uniform within
// a range. Figure 20 runs two phases with disjoint hot prefix ranges; the
// Phase field switches the hot assignment.
type PrefixRandom struct {
	rng *rand.Rand
	n   int
	// ranges[i] = [start, end) index range of the i-th prefix group.
	starts []int
	// hotPerPhase[p] lists the hot group ids of phase p.
	hotPerPhase [][]int
	phase       int
	hotFrac     float64 // fraction of queries hitting a hot range
}

// PrefixRandomConfig configures the generator.
type PrefixRandomConfig struct {
	// Groups is the number of prefix ranges the key space is split into
	// (the paper defines ranges by the 44 most significant key bits; over a
	// sorted key array this is equivalent to contiguous index ranges).
	Groups int
	// HotGroups is the number of simultaneously hot ranges per phase.
	HotGroups int
	// Phases is the number of disjoint hot assignments to prepare.
	Phases int
	// HotFraction is the probability a query targets a hot range.
	HotFraction float64
	Seed        int64
}

// NewPrefixRandom creates a generator over [0, n).
func NewPrefixRandom(n int, cfg PrefixRandomConfig) *PrefixRandom {
	if cfg.Groups < 1 {
		cfg.Groups = 64
	}
	if cfg.Groups > n {
		cfg.Groups = n
	}
	if cfg.HotGroups < 1 {
		cfg.HotGroups = cfg.Groups / 16
		if cfg.HotGroups < 1 {
			cfg.HotGroups = 1
		}
	}
	if cfg.Phases < 1 {
		cfg.Phases = 1
	}
	if cfg.HotFraction <= 0 || cfg.HotFraction > 1 {
		cfg.HotFraction = 0.95
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &PrefixRandom{rng: rng, n: n, hotFrac: cfg.HotFraction}
	p.starts = make([]int, cfg.Groups+1)
	for i := 0; i <= cfg.Groups; i++ {
		p.starts[i] = i * n / cfg.Groups
	}
	// Assign disjoint hot groups to phases.
	perm := rng.Perm(cfg.Groups)
	need := cfg.HotGroups * cfg.Phases
	if need > cfg.Groups {
		// Reuse with offsets when there are not enough groups; phases then
		// overlap, which only weakens (never breaks) the phase-shift signal.
		for len(perm) < need {
			perm = append(perm, rng.Perm(cfg.Groups)...)
		}
	}
	p.hotPerPhase = make([][]int, cfg.Phases)
	for ph := 0; ph < cfg.Phases; ph++ {
		hot := append([]int(nil), perm[ph*cfg.HotGroups:(ph+1)*cfg.HotGroups]...)
		sort.Ints(hot)
		p.hotPerPhase[ph] = hot
	}
	return p
}

// SetPhase switches the active hot assignment (clamped to valid range).
func (p *PrefixRandom) SetPhase(phase int) {
	if phase < 0 {
		phase = 0
	}
	if phase >= len(p.hotPerPhase) {
		phase = len(p.hotPerPhase) - 1
	}
	p.phase = phase
}

// Phase returns the active phase.
func (p *PrefixRandom) Phase() int { return p.phase }

// HotGroups returns the hot group ids of the given phase.
func (p *PrefixRandom) HotGroups(phase int) []int { return p.hotPerPhase[phase] }

// GroupRange returns the index range [start, end) of group g.
func (p *PrefixRandom) GroupRange(g int) (int, int) { return p.starts[g], p.starts[g+1] }

// Draw implements Dist.
func (p *PrefixRandom) Draw() int {
	var g int
	hot := p.hotPerPhase[p.phase]
	if p.rng.Float64() < p.hotFrac {
		g = hot[p.rng.Intn(len(hot))]
	} else {
		g = p.rng.Intn(len(p.starts) - 1)
	}
	lo, hi := p.starts[g], p.starts[g+1]
	if hi <= lo {
		return lo
	}
	return lo + p.rng.Intn(hi-lo)
}

// N implements Dist.
func (p *PrefixRandom) N() int { return p.n }
