package workload

import (
	"math"
	"testing"
)

func inRange(t *testing.T, d Dist, draws int) {
	t.Helper()
	for i := 0; i < draws; i++ {
		v := d.Draw()
		if v < 0 || v >= d.N() {
			t.Fatalf("draw %d out of range [0,%d)", v, d.N())
		}
	}
}

func TestUniformRangeAndSpread(t *testing.T) {
	u := NewUniform(1000, 1)
	inRange(t, u, 10000)
	cdf := CDF(u, 100000, 10)
	for i, c := range cdf {
		want := float64(i+1) / 10
		if math.Abs(c-want) > 0.02 {
			t.Fatalf("uniform CDF bucket %d = %.3f want %.3f", i, c, want)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher alpha must concentrate more mass on the first buckets.
	const n = 1_000_000
	mass := func(alpha float64) float64 {
		z := NewZipf(n, alpha, 42)
		hits := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			if z.Draw() < n/100 { // top 1% of the key space
				hits++
			}
		}
		return float64(hits) / draws
	}
	m05, m10, m15 := mass(0.5), mass(1.0), mass(1.5)
	if !(m05 < m10 && m10 < m15) {
		t.Fatalf("zipf mass not monotone in alpha: %.3f %.3f %.3f", m05, m10, m15)
	}
	if m15 < 0.9 {
		t.Fatalf("alpha=1.5 should be extremely skewed, got %.3f in top 1%%", m15)
	}
	if m10 < 0.4 || m10 > 0.95 {
		t.Fatalf("alpha=1.0 top-1%% mass implausible: %.3f", m10)
	}
}

func TestZipfRankProbabilities(t *testing.T) {
	// Empirical rank frequencies must follow ~1/(r+1)^alpha.
	z := NewZipf(1000, 1.0, 7)
	counts := make([]int, 1000)
	const draws = 2_000_000
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	// P(0)/P(9) should be about 10^1 = 10.
	ratio := float64(counts[0]) / float64(counts[9])
	if ratio < 7 || ratio > 13 {
		t.Fatalf("rank0/rank9 ratio = %.2f want ~10", ratio)
	}
	if counts[0] <= counts[1] || counts[1] <= counts[3] {
		t.Fatal("rank frequencies not decreasing")
	}
}

func TestZipfTailReachable(t *testing.T) {
	z := NewZipf(200_000, 0.2, 3) // nearly uniform: tail must be hit
	maxSeen := 0
	for i := 0; i < 100000; i++ {
		if v := z.Draw(); v > maxSeen {
			maxSeen = v
		}
	}
	if maxSeen < 150_000 {
		t.Fatalf("tail never sampled: max=%d", maxSeen)
	}
	inRange(t, z, 10000)
}

func TestZipfAlphaOne(t *testing.T) {
	z := NewZipf(500_000, 1.0, 9)
	inRange(t, z, 20000)
	if z.Alpha() != 1.0 {
		t.Fatal("alpha accessor")
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(1, 1.2, 1)
	for i := 0; i < 100; i++ {
		if z.Draw() != 0 {
			t.Fatal("n=1 must always draw 0")
		}
	}
	z0 := NewZipf(100, 0, 1) // alpha clamped to ~0: near-uniform
	inRange(t, z0, 1000)
}

func TestNormalConcentration(t *testing.T) {
	g := NewNormal(100000, 0.5, 0.03, 5)
	inRange(t, g, 10000)
	within := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := g.Draw()
		if v >= 44000 && v < 56000 { // mu ± 2 sigma
			within++
		}
	}
	if frac := float64(within) / draws; frac < 0.90 {
		t.Fatalf("normal not concentrated: %.3f within 2 sigma", frac)
	}
}

func TestLognormalShape(t *testing.T) {
	l := NewLognormal(100000, 0, 0.1, 6)
	inRange(t, l, 10000)
	cdf := CDF(l, 100000, 10)
	// The mass is concentrated (skewed), not uniform.
	spread := cdf[9] - cdf[0]
	maxBucket := cdf[0]
	for i := 1; i < 10; i++ {
		if d := cdf[i] - cdf[i-1]; d > maxBucket {
			maxBucket = d
		}
	}
	if maxBucket < 0.3 {
		t.Fatalf("lognormal should concentrate >30%% in one decile, got %.3f (spread %.3f)", maxBucket, spread)
	}
}

func TestHotSetFractions(t *testing.T) {
	h := NewHotSet(100000, 0, 0.01, 0.99, 8)
	inRange(t, h, 10000)
	hot := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if h.Draw() < 1000 {
			hot++
		}
	}
	if frac := float64(hot) / draws; frac < 0.95 {
		t.Fatalf("hot fraction %.3f want >= 0.95", frac)
	}
}

func TestHotSetClamping(t *testing.T) {
	h := NewHotSet(100, 99, 0.5, 1.0, 1)
	inRange(t, h, 1000)
}

func TestPrefixRandomPhases(t *testing.T) {
	p := NewPrefixRandom(100000, PrefixRandomConfig{Groups: 100, HotGroups: 5, Phases: 2, HotFraction: 0.95, Seed: 3})
	inRange(t, p, 10000)
	hot0 := map[int]bool{}
	for _, g := range p.HotGroups(0) {
		hot0[g] = true
	}
	for _, g := range p.HotGroups(1) {
		if hot0[g] {
			t.Fatalf("phase hot sets overlap at group %d", g)
		}
	}
	// Phase 0 draws should land mostly in phase-0 hot groups.
	count := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		v := p.Draw()
		g := v / 1000
		if hot0[g] {
			count++
		}
	}
	if frac := float64(count) / draws; frac < 0.9 {
		t.Fatalf("phase-0 hot mass %.3f", frac)
	}
	// Switch phase: mass must move away.
	p.SetPhase(1)
	count = 0
	for i := 0; i < draws; i++ {
		if hot0[p.Draw()/1000] {
			count++
		}
	}
	if frac := float64(count) / draws; frac > 0.2 {
		t.Fatalf("after phase switch, old hot mass still %.3f", frac)
	}
	if p.Phase() != 1 {
		t.Fatal("Phase accessor")
	}
	p.SetPhase(99)
	if p.Phase() != 1 {
		t.Fatal("SetPhase must clamp")
	}
}

func TestPrefixRandomGroupRange(t *testing.T) {
	p := NewPrefixRandom(1000, PrefixRandomConfig{Groups: 10, HotGroups: 2, Phases: 1, Seed: 1})
	lo, hi := p.GroupRange(3)
	if lo != 300 || hi != 400 {
		t.Fatalf("GroupRange(3)=[%d,%d)", lo, hi)
	}
}

func TestGeneratorMixFractions(t *testing.T) {
	g := NewGenerator(W11, 100000, 17)
	var reads, scans, inserts int
	const draws = 100000
	for i := 0; i < draws; i++ {
		op := g.Next()
		switch op.Kind {
		case OpRead:
			reads++
		case OpScan:
			scans++
			if op.ScanLen < 10 || op.ScanLen > 50 {
				t.Fatalf("scan length %d outside [10,50]", op.ScanLen)
			}
		case OpInsert:
			inserts++
		}
		if op.Index < 0 || op.Index >= 100000 {
			t.Fatalf("index %d out of range", op.Index)
		}
	}
	if f := float64(reads) / draws; math.Abs(f-0.49) > 0.02 {
		t.Fatalf("read fraction %.3f", f)
	}
	if f := float64(inserts) / draws; math.Abs(f-0.02) > 0.005 {
		t.Fatalf("insert fraction %.3f", f)
	}
}

func TestGeneratorAllSpecs(t *testing.T) {
	for name, spec := range Specs {
		g := NewGenerator(spec, 10000, 3)
		for i := 0; i < 2000; i++ {
			op := g.Next()
			if op.Index < 0 || op.Index >= 10000 {
				t.Fatalf("%s: index out of range", name)
			}
			if op.Kind == OpScan && op.ScanLen < 1 {
				t.Fatalf("%s: scan without length", name)
			}
		}
	}
}

func TestGeneratorW4ScanLengths(t *testing.T) {
	g := NewGenerator(W4, 10000, 5)
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Kind == OpScan && (op.ScanLen < 100 || op.ScanLen > 250) {
			t.Fatalf("W4 scan length %d outside [100,250]", op.ScanLen)
		}
	}
}

func TestGeneratorFillAndPhase(t *testing.T) {
	g := NewGenerator(W3, 50000, 11)
	ops := g.Fill(make([]Op, 1000))
	if len(ops) != 1000 {
		t.Fatal("Fill length")
	}
	g.SetPhase(1) // must not panic; W3 has a PrefixRandom dist
	g2 := NewGenerator(W11, 100, 1)
	g2.SetPhase(1) // no prefix dist: no-op
}

func TestCDFMonotone(t *testing.T) {
	z := NewZipf(10000, 1.2, 2)
	cdf := CDF(z, 50000, 20)
	prev := 0.0
	for i, c := range cdf {
		if c < prev {
			t.Fatalf("CDF decreasing at %d", i)
		}
		prev = c
	}
	if math.Abs(cdf[19]-1.0) > 1e-9 {
		t.Fatalf("CDF must end at 1, got %v", cdf[19])
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(10_000_000, 1.0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw()
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := NewGenerator(W11, 10_000_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
