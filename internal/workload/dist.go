// Package workload implements the query-distribution machinery of the
// paper's §5.1: Zipfian, Normal, Lognormal and Uniform key selectors, the
// hot-set selector used for the custom YCSB configuration, the dbbench-style
// prefix-random generator, and declarative specifications of the workloads
// W1.1–W6.2 from Table 3.
package workload

import (
	"math"
	"math/rand"
)

// Dist selects indexes in [0, N) according to some distribution. Draw must
// be safe for use from a single goroutine; concurrent benchmarks hold one
// Dist per worker.
type Dist interface {
	// Draw returns the next index in [0, N).
	Draw() int
	// N returns the index-space size.
	N() int
}

// Uniform selects indexes uniformly.
type Uniform struct {
	rng *rand.Rand
	n   int
}

// NewUniform creates a uniform selector over [0, n).
func NewUniform(n int, seed int64) *Uniform {
	return &Uniform{rng: rand.New(rand.NewSource(seed)), n: n}
}

// Draw implements Dist.
func (u *Uniform) Draw() int { return u.rng.Intn(u.n) }

// N implements Dist.
func (u *Uniform) N() int { return u.n }

// Zipf selects indexes with a Zipfian distribution of parameter alpha over
// ranks 0..n-1: P(rank r) ∝ 1/(r+1)^alpha. Rank 0 is index 0, so hot keys
// are clustered at the low end of the (sorted) key space — this is what
// produces the node-level skew the adaptive indexes exploit, and it matches
// the CDF shapes of the paper's Figure 11.
//
// Unlike math/rand.Zipf (which requires s > 1), this implementation
// supports any alpha > 0 — the skew sweep of Figure 14 needs the whole
// range (0, 1.6]. Sampling inverts the CDF: the head of the harmonic
// prefix sums is tabulated exactly and binary-searched, the tail is
// inverted analytically via the Euler–Maclaurin integral approximation.
type Zipf struct {
	rng    *rand.Rand
	n      int
	alpha  float64
	prefix []float64 // prefix[i] = H_{i+1} = sum_{j=1..i+1} j^-alpha
	hn     float64   // H_n
	m      int       // tabulated head size
}

// zipfHeadSize bounds the exact prefix table (64 Ki ranks = 512 KiB).
const zipfHeadSize = 1 << 16

// NewZipf creates a Zipfian selector over [0, n) with skew alpha.
func NewZipf(n int, alpha float64, seed int64) *Zipf {
	if n < 1 {
		n = 1
	}
	if alpha <= 0 {
		alpha = 1e-9
	}
	m := n
	if m > zipfHeadSize {
		m = zipfHeadSize
	}
	z := &Zipf{rng: rand.New(rand.NewSource(seed)), n: n, alpha: alpha, m: m}
	z.prefix = make([]float64, m)
	sum := 0.0
	for i := 0; i < m; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		z.prefix[i] = sum
	}
	z.hn = sum
	if n > m {
		// Midpoint-corrected integral for sum_{j=m+1..n} j^-alpha.
		z.hn += integralPow(float64(m)+0.5, float64(n)+0.5, alpha)
	}
	return z
}

// integralPow evaluates ∫_a^b x^-theta dx.
func integralPow(a, b, theta float64) float64 {
	if theta == 1 {
		return math.Log(b / a)
	}
	return (math.Pow(b, 1-theta) - math.Pow(a, 1-theta)) / (1 - theta)
}

// Draw implements Dist.
func (z *Zipf) Draw() int {
	u := z.rng.Float64() * z.hn
	if u <= z.prefix[z.m-1] {
		// First index i with H_{i+1} >= u.
		lo, hi := 0, z.m
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if z.prefix[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Tail: solve H_m + ∫_{m+0.5}^{r+0.5} x^-a dx = u for r.
	rem := u - z.prefix[z.m-1]
	a := float64(z.m) + 0.5
	var r float64
	if z.alpha == 1 {
		r = a*math.Exp(rem) - 0.5
	} else {
		v := math.Pow(a, 1-z.alpha) + rem*(1-z.alpha)
		if v <= 0 {
			return z.n - 1
		}
		r = math.Pow(v, 1/(1-z.alpha)) - 0.5
	}
	idx := int(r)
	if idx < z.m {
		idx = z.m
	}
	if idx >= z.n {
		idx = z.n - 1
	}
	return idx
}

// N implements Dist.
func (z *Zipf) N() int { return z.n }

// Alpha returns the skew parameter.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Normal selects indexes by drawing from N(mu, sigma) over the unit
// interval and scaling to [0, n); out-of-range draws are clamped. The
// paper uses mu = 0.5, sigma = 0.03.
type Normal struct {
	rng       *rand.Rand
	n         int
	mu, sigma float64
}

// NewNormal creates a normal selector.
func NewNormal(n int, mu, sigma float64, seed int64) *Normal {
	return &Normal{rng: rand.New(rand.NewSource(seed)), n: n, mu: mu, sigma: sigma}
}

// Draw implements Dist.
func (g *Normal) Draw() int {
	x := g.rng.NormFloat64()*g.sigma + g.mu
	idx := int(x * float64(g.n))
	if idx < 0 {
		idx = 0
	}
	if idx >= g.n {
		idx = g.n - 1
	}
	return idx
}

// N implements Dist.
func (g *Normal) N() int { return g.n }

// Lognormal selects indexes by drawing exp(N(mu, sigma)) and scaling so the
// bulk of the mass lands in the lower part of the key space. The paper uses
// mu = 0, sigma = 0.1 — a tight peak around 1.0 — which we scale by
// mapping the [exp(mu-4sigma), exp(mu+4sigma)] range onto [0, n).
type Lognormal struct {
	rng       *rand.Rand
	n         int
	mu, sigma float64
	lo, span  float64
}

// NewLognormal creates a lognormal selector.
func NewLognormal(n int, mu, sigma float64, seed int64) *Lognormal {
	lo := math.Exp(mu - 4*sigma)
	hi := math.Exp(mu + 4*sigma)
	return &Lognormal{
		rng: rand.New(rand.NewSource(seed)),
		n:   n, mu: mu, sigma: sigma,
		lo: lo, span: hi - lo,
	}
}

// Draw implements Dist.
func (l *Lognormal) Draw() int {
	x := math.Exp(l.rng.NormFloat64()*l.sigma + l.mu)
	idx := int((x - l.lo) / l.span * float64(l.n))
	if idx < 0 {
		idx = 0
	}
	if idx >= l.n {
		idx = l.n - 1
	}
	return idx
}

// N implements Dist.
func (l *Lognormal) N() int { return l.n }

// LognormalRank selects item ranks directly from exp(N(mu, sigma))·scale:
// unlike Lognormal (which spreads the distribution across the whole key
// space), the hot mass concentrates on a few hundred ranks regardless of
// n — the regime of the paper's Figure 2, where the top-1000 of 1M items
// carry ~70% of all accesses.
type LognormalRank struct {
	rng       *rand.Rand
	n         int
	mu, sigma float64
	scale     float64
	min       float64
}

// NewLognormalRank creates a rank-concentrated lognormal selector.
func NewLognormalRank(n int, mu, sigma, scale float64, seed int64) *LognormalRank {
	return &LognormalRank{
		rng: rand.New(rand.NewSource(seed)),
		n:   n, mu: mu, sigma: sigma, scale: scale,
		min: math.Exp(mu-4*sigma) * scale,
	}
}

// Draw implements Dist.
func (l *LognormalRank) Draw() int {
	x := math.Exp(l.rng.NormFloat64()*l.sigma+l.mu) * l.scale
	idx := int(x - l.min)
	if idx < 0 {
		idx = 0
	}
	if idx >= l.n {
		idx = l.n - 1
	}
	return idx
}

// N implements Dist.
func (l *LognormalRank) N() int { return l.n }

// HotSet directs hotFrac of the draws uniformly into a contiguous hot range
// covering hotSize of the key space and the rest uniformly everywhere —
// the paper's "custom read-only YCSB configuration with a hot set size of
// 1% of the dataset" (W4).
type HotSet struct {
	rng              *rand.Rand
	n                int
	hotStart, hotLen int
	hotFrac          float64
}

// NewHotSet creates a hot-set selector. hotSize and hotFrac are fractions
// in (0, 1]; the hot range starts at hotStart (an index).
func NewHotSet(n int, hotStart int, hotSize, hotFrac float64, seed int64) *HotSet {
	hotLen := int(float64(n) * hotSize)
	if hotLen < 1 {
		hotLen = 1
	}
	if hotStart+hotLen > n {
		hotStart = n - hotLen
	}
	if hotStart < 0 {
		hotStart = 0
	}
	return &HotSet{
		rng: rand.New(rand.NewSource(seed)),
		n:   n, hotStart: hotStart, hotLen: hotLen, hotFrac: hotFrac,
	}
}

// Draw implements Dist.
func (h *HotSet) Draw() int {
	if h.rng.Float64() < h.hotFrac {
		return h.hotStart + h.rng.Intn(h.hotLen)
	}
	return h.rng.Intn(h.n)
}

// N implements Dist.
func (h *HotSet) N() int { return h.n }

// CDF empirically estimates the cumulative distribution of a Dist by
// drawing samples; used by tests and by the Figure 11 rendering.
func CDF(d Dist, samples, buckets int) []float64 {
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		b := d.Draw() * buckets / d.N()
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	cdf := make([]float64, buckets)
	cum := 0
	for i, c := range counts {
		cum += c
		cdf[i] = float64(cum) / float64(samples)
	}
	return cdf
}
