package workload

import (
	"math"
	"testing"
)

func TestYCSBSpecsGenerate(t *testing.T) {
	for letter, spec := range YCSBSpecs {
		g := NewGenerator(spec, 50_000, 7)
		var reads, scans, writes int
		const draws = 50_000
		for i := 0; i < draws; i++ {
			op := g.Next()
			if op.Index < 0 || op.Index >= 50_000 {
				t.Fatalf("YCSB-%s: index out of range", letter)
			}
			switch op.Kind {
			case OpRead:
				reads++
			case OpScan:
				scans++
				if op.ScanLen < spec.ScanMin || op.ScanLen > spec.ScanMax {
					t.Fatalf("YCSB-%s: scan length %d outside [%d,%d]",
						letter, op.ScanLen, spec.ScanMin, spec.ScanMax)
				}
			case OpInsert:
				writes++
			}
		}
		check := func(name string, got int, want float64) {
			t.Helper()
			if f := float64(got) / draws; math.Abs(f-want) > 0.02 {
				t.Fatalf("YCSB-%s %s fraction %.3f want %.2f", letter, name, f, want)
			}
		}
		switch letter {
		case "A", "F":
			check("read", reads, 0.50)
			check("write", writes, 0.50)
		case "B", "D":
			check("read", reads, 0.95)
			check("write", writes, 0.05)
		case "C":
			check("read", reads, 1.0)
		case "E", "E-long":
			check("scan", scans, 0.95)
			check("write", writes, 0.05)
		}
	}
}

func TestYCSBZipfSkew(t *testing.T) {
	g := NewGenerator(YCSBC, 100_000, 3)
	hot := 0
	const draws = 50_000
	for i := 0; i < draws; i++ {
		if g.Next().Index < 1000 { // top 1%
			hot++
		}
	}
	if f := float64(hot) / draws; f < 0.3 {
		t.Fatalf("YCSB zipf(0.99) top-1%% mass too low: %.3f", f)
	}
}
