package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, BitsPerKey)
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10000, BitsPerKey)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		f.Add(rng.Uint64())
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if f.Contains(rng.Uint64()) {
			fp++
		}
	}
	// 10 bits/key gives ~1% theoretical FPR; allow generous slack.
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestAddIfNew(t *testing.T) {
	f := New(1000, BitsPerKey)
	if !f.AddIfNew(12345) {
		t.Fatal("first AddIfNew must report new")
	}
	if f.AddIfNew(12345) {
		t.Fatal("second AddIfNew must report seen")
	}
	if !f.Contains(12345) {
		t.Fatal("AddIfNew must insert")
	}
}

func TestReset(t *testing.T) {
	f := New(100, BitsPerKey)
	f.Add(7)
	f.Reset()
	if f.Contains(7) {
		t.Fatal("Reset must clear the filter")
	}
}

func TestTinyCapacity(t *testing.T) {
	f := New(0, 0)
	f.Add(1)
	if !f.Contains(1) {
		t.Fatal("degenerate filter must still work")
	}
}

func TestQuickMembership(t *testing.T) {
	f := New(4096, BitsPerKey)
	inserted := map[uint64]bool{}
	fn := func(h uint64) bool {
		f.Add(h)
		inserted[h] = true
		for k := range inserted {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddIfNew(b *testing.B) {
	f := New(1<<16, BitsPerKey)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddIfNew(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkContains(b *testing.B) {
	f := New(1<<16, BitsPerKey)
	for i := 0; i < 1<<16; i++ {
		f.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Contains(uint64(i) * 0x9e3779b97f4a7c15)
	}
}
