// Package bloom implements the Bloom filter the adaptation manager installs
// in front of its sample hash map (paper §3.1.3): an identifier must be
// inserted once before the map admits it, which keeps one-off accesses to
// cold nodes from allocating tracking entries. The same filter type also
// guards the dynamic stage of the Dual-Stage baseline (paper §5.2).
package bloom

import "math"

// Filter is a standard Bloom filter over 64-bit hashes. It is not
// goroutine-safe; the concurrent sampling paths keep one filter per shard.
type Filter struct {
	words   []uint64
	bitMask uint64
	k       int
}

// BitsPerKey is the paper's configuration: 10 bits per expected item.
const BitsPerKey = 10

// New creates a filter dimensioned for capacity items at bitsPerKey bits
// each. The bit-array size is rounded up to a power of two so probes can
// use masking instead of modulo. The number of hash functions is the
// standard optimum k = bitsPerKey · ln 2, clamped to [1, 16].
func New(capacity, bitsPerKey int) *Filter {
	if capacity < 1 {
		capacity = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	bitCount := nextPow2(uint64(capacity) * uint64(bitsPerKey))
	if bitCount < 64 {
		bitCount = 64
	}
	k := int(float64(bitsPerKey) * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{
		words:   make([]uint64, bitCount/64),
		bitMask: bitCount - 1,
		k:       k,
	}
}

func nextPow2(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	v--
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	v |= v >> 16
	v |= v >> 32
	return v + 1
}

// Add inserts hash h (double hashing: probe_i = h1 + i·h2).
func (f *Filter) Add(h uint64) {
	h1, h2 := h, h>>32|h<<32
	for i := 0; i < f.k; i++ {
		bit := h1 & f.bitMask
		f.words[bit/64] |= 1 << (bit % 64)
		h1 += h2
	}
}

// Contains reports whether h may have been added. False positives are
// possible, false negatives are not.
func (f *Filter) Contains(h uint64) bool {
	h1, h2 := h, h>>32|h<<32
	for i := 0; i < f.k; i++ {
		bit := h1 & f.bitMask
		if f.words[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
		h1 += h2
	}
	return true
}

// AddIfNew inserts h and reports whether it was (possibly) new: it returns
// false only if every probed bit was already set. This is the single-pass
// operation the sampling fast path uses.
func (f *Filter) AddIfNew(h uint64) bool {
	h1, h2 := h, h>>32|h<<32
	fresh := false
	for i := 0; i < f.k; i++ {
		bit := h1 & f.bitMask
		w, m := bit/64, uint64(1)<<(bit%64)
		if f.words[w]&m == 0 {
			fresh = true
			f.words[w] |= m
		}
		h1 += h2
	}
	return fresh
}

// LeafBitsPerKey is the default sizing for per-leaf negative-lookup
// filters in front of compressed leaf encodings: ~6 bits/key gives a
// false-positive rate around 5% at k=4, cheap enough that a 256-key leaf
// costs at most one 256-byte filter (~3% of its succinct footprint).
const LeafBitsPerKey = 6

// FromHashes builds a filter pre-populated with hashes in one shot. It is
// the constructor for immutable per-leaf negative filters: built when a
// leaf is (re-)encoded, never mutated afterwards, so concurrent readers
// can probe without synchronization.
func FromHashes(hashes []uint64, bitsPerKey int) *Filter {
	f := New(len(hashes), bitsPerKey)
	for _, h := range hashes {
		f.Add(h)
	}
	return f
}

// Reset clears the filter; the adaptation manager calls this at the start
// of every sampling phase.
func (f *Filter) Reset() {
	for i := range f.words {
		f.words[i] = 0
	}
}

// Bytes returns the heap footprint of the bit array.
func (f *Filter) Bytes() int { return len(f.words) * 8 }

// K returns the number of hash probes per operation.
func (f *Filter) K() int { return f.k }
