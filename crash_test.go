// Crash-recovery fault-injection harness (DESIGN.md §12). The parent test
// re-executes this test binary as a sacrificial child with the WAL's
// crash injector armed at a randomized syscall site: the child runs a
// deterministic write workload against a durable tree, printing an ack
// line after every acknowledged operation, and dies abruptly — possibly
// mid-fsync, mid-checkpoint, or with a torn partial write — at the
// injected point. The parent then recovers the directory in-process and
// asserts the two durability invariants:
//
//   - zero lost acked writes: every operation acked before the crash is
//     visible after recovery (ops are sequential, so the recovered state
//     must equal the acked prefix, plus at most the one in-flight op);
//   - zero phantom writes: no key the workload never reached exists.
//
// When the child's checkpoint completed before the crash, the parent
// additionally asserts a warm start with the checkpointed leaf-encoding
// distribution intact. Injected crashes exit with wal.CrashExitCode so
// the harness can tell them from real child failures.
package ahi_test

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"ahi"
	"ahi/internal/btree"
	"ahi/internal/wal"
)

const (
	crashChildEnv = "AHI_CRASH_CHILD"
	crashOps      = 800 // sequential child ops; checkpoint at the midpoint
	crashCkptAt   = crashOps / 2
)

// crashOpts pins sampling off (MinSkip huge) so the child workload and the
// parent's validation lookups never trigger background adaptation — the
// only encoding changes are the child's explicit migrations, which the
// warm-restore assertion counts.
func crashOpts(dir string, pol ahi.SyncPolicy) ahi.BTreeOptions {
	huge := 1 << 30
	return ahi.BTreeOptions{
		ColdEncoding: ahi.EncSuccinct,
		InitialSkip:  huge, MinSkip: huge, MaxSkip: huge,
		Durability: &ahi.DurabilityOptions{
			Dir:          dir,
			SyncPolicy:   pol,
			SegmentBytes: 8 << 10, // small segments: rotation sites get hit
		},
	}
}

// crashApply applies op j to the model: every 7th op deletes an earlier
// key (inserted at op j-3, never deleted twice since j-3 ≡ 3 mod 7), the
// rest insert key j.
func crashApply(m map[uint64]uint64, j int) {
	if j%7 == 6 {
		delete(m, uint64(j-3))
	} else {
		m[uint64(j)] = uint64(j)*3 + 1
	}
}

// TestCrashChild is the sacrificial child body; it only runs re-executed
// by TestCrashRecovery with the environment set.
func TestCrashChild(t *testing.T) {
	if os.Getenv(crashChildEnv) == "" {
		t.Skip("crash-harness child: run via TestCrashRecovery")
	}
	dir := os.Getenv("AHI_CRASH_DIR")
	target, _ := strconv.ParseInt(os.Getenv("AHI_CRASH_TARGET"), 10, 64)
	seed, _ := strconv.ParseInt(os.Getenv("AHI_CRASH_SEED"), 10, 64)
	pol, err := ahi.SyncPolicyByName(os.Getenv("AHI_CRASH_POLICY"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(3)
	}
	out := os.Stdout // direct fd writes: nothing buffered when we die

	wal.ArmCrash(target, seed)
	tree, _, err := ahi.OpenBTree(crashOpts(dir, pol))
	if err != nil {
		fmt.Fprintln(os.Stderr, "child open:", err)
		os.Exit(3)
	}
	s := tree.NewSession()
	for j := 0; j < crashOps; j++ {
		if j == crashCkptAt {
			// Force a non-default encoding mix before the checkpoint: the
			// two leftmost leaves hold low keys no later op touches, so
			// their packed encoding must survive recovery verbatim.
			migrated := 0
			tree.Tree.WalkLeaves(func(l *btree.Leaf) bool {
				if tree.Tree.MigrateLeaf(l, ahi.EncPacked) {
					migrated++
				}
				return migrated < 2
			})
			if err := tree.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "child checkpoint:", err)
				os.Exit(3)
			}
			fmt.Fprintf(out, "C %d\n", migrated)
		}
		crashApplyTree(s, j)
		fmt.Fprintf(out, "A %d\n", j) // the op is acked: it must survive
	}
	tree.Close() // crash sites inside Close are post-ack: still covered
	fmt.Fprintf(out, "SITES %d\nDONE\n", wal.CrashSites())
}

func crashApplyTree(s *ahi.BTreeSession, j int) {
	if j%7 == 6 {
		s.Delete(uint64(j - 3))
	} else {
		s.Insert(uint64(j), uint64(j)*3+1)
	}
}

type crashResult struct {
	exit     int
	acked    int   // last acked op index, -1 if none
	ckptDone bool  // the child's checkpoint call returned
	migrated int   // leaves the child migrated to Packed before it
	sites    int64 // syscall sites visited (calibration runs)
	done     bool
	stderr   string
}

func runCrashChild(t *testing.T, dir string, target, seed int64, policy string) crashResult {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		"AHI_CRASH_DIR="+dir,
		"AHI_CRASH_TARGET="+strconv.FormatInt(target, 10),
		"AHI_CRASH_SEED="+strconv.FormatInt(seed, 10),
		"AHI_CRASH_POLICY="+policy,
	)
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	outB, err := cmd.Output()
	res := crashResult{acked: -1, stderr: errBuf.String()}
	if err == nil {
		res.exit = 0
	} else if ee, ok := err.(*exec.ExitError); ok {
		res.exit = ee.ExitCode()
	} else {
		t.Fatalf("spawn child: %v", err)
	}
	for _, line := range strings.Split(string(outB), "\n") {
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "A":
			if len(f) == 2 {
				res.acked, _ = strconv.Atoi(f[1])
			}
		case "C":
			res.ckptDone = true
			if len(f) == 2 {
				res.migrated, _ = strconv.Atoi(f[1])
			}
		case "SITES":
			if len(f) == 2 {
				res.sites, _ = strconv.ParseInt(f[1], 10, 64)
			}
		case "DONE":
			res.done = true
		}
	}
	return res
}

// validateCrash recovers the child's directory and checks the invariants.
func validateCrash(t *testing.T, trial int, dir, policy string, res crashResult) {
	t.Helper()
	pol, _ := ahi.SyncPolicyByName(policy)
	tree, st, err := ahi.OpenBTree(crashOpts(dir, pol))
	if err != nil {
		t.Fatalf("trial %d (%s, acked %d): recovery failed: %v", trial, policy, res.acked, err)
	}
	defer tree.Close()

	// Model: state after the acked prefix; the single in-flight op may or
	// may not have landed (it was never acked, so both are legal).
	applied := make(map[uint64]uint64)
	for j := 0; j <= res.acked; j++ {
		crashApply(applied, j)
	}
	inflight := make(map[uint64]uint64, len(applied))
	for k, v := range applied {
		inflight[k] = v
	}
	if n := res.acked + 1; n < crashOps {
		crashApply(inflight, n)
	}

	s := tree.NewSession()
	for k := uint64(0); k < crashOps+32; k++ { // +32: phantom band past the workload
		v, ok := s.Lookup(k)
		wv, wok := applied[k]
		iv, iok := inflight[k]
		if ok == wok && (!ok || v == wv) {
			continue
		}
		if ok == iok && (!ok || v == iv) {
			continue
		}
		t.Fatalf("trial %d (%s, acked %d, exit %d): key %d = (%d,%v), want (%d,%v) or in-flight (%d,%v)\nchild stderr: %s",
			trial, policy, res.acked, res.exit, k, v, ok, wv, wok, iv, iok, res.stderr)
	}

	if res.ckptDone {
		// The checkpoint call returned before the crash, so it is durable:
		// recovery must be warm with the packed leaves restored (replayed
		// tail ops only touch higher keys, and replay never expands).
		if !st.WarmStart {
			t.Fatalf("trial %d (%s): checkpoint acked but cold start: %+v", trial, policy, st)
		}
		if _, p, _ := tree.Tree.LeafCounts(); int(p) < res.migrated {
			t.Fatalf("trial %d (%s): %d packed leaves after warm recovery, checkpointed %d",
				trial, policy, p, res.migrated)
		}
	}
}

// TestCrashRecovery drives the harness: one calibration child per fsync
// policy to count syscall sites, then randomized crash targets across the
// whole site range. AHI_CRASH_SEED pins the randomization (the CI smoke
// leg runs a fixed seed); AHI_CRASH_TRIALS overrides the trial count.
func TestCrashRecovery(t *testing.T) {
	if os.Getenv(crashChildEnv) != "" {
		t.Skip("child process")
	}
	if testing.Short() {
		t.Skip("crash harness spawns >100 child processes")
	}
	seed := int64(0xA41C0DE)
	if env := os.Getenv("AHI_CRASH_SEED"); env != "" {
		seed, _ = strconv.ParseInt(env, 10, 64)
	}
	trials := 102 // ≥100 injected crash points, balanced across policies
	if env := os.Getenv("AHI_CRASH_TRIALS"); env != "" {
		trials, _ = strconv.Atoi(env)
	}
	rng := rand.New(rand.NewSource(seed))
	policies := []string{"always", "interval", "os"}

	// Calibration: armed with an unreachable target, the child completes
	// and reports how many syscall sites one full run visits per policy.
	sites := map[string]int64{}
	for _, pol := range policies {
		dir := t.TempDir()
		res := runCrashChild(t, dir, 1<<40, 1, pol)
		if res.exit != 0 || !res.done {
			t.Fatalf("calibration (%s): exit %d done %v\nstderr: %s", pol, res.exit, res.done, res.stderr)
		}
		if res.sites < 100 {
			t.Fatalf("calibration (%s): only %d syscall sites — workload too small for the harness", pol, res.sites)
		}
		sites[pol] = res.sites
		validateCrash(t, -1, dir, pol, res)
	}

	crashed := 0
	for i := 0; i < trials; i++ {
		pol := policies[i%len(policies)]
		target := 1 + rng.Int63n(sites[pol])
		dir := t.TempDir()
		res := runCrashChild(t, dir, target, rng.Int63(), pol)
		switch res.exit {
		case wal.CrashExitCode:
			crashed++
		case 0:
			if !res.done {
				t.Fatalf("trial %d (%s, target %d): clean exit without DONE\nstderr: %s", i, pol, target, res.stderr)
			}
		default:
			t.Fatalf("trial %d (%s, target %d): child failed with exit %d\nstderr: %s", i, pol, target, res.exit, res.stderr)
		}
		validateCrash(t, i, dir, pol, res)
	}
	if crashed < trials/2 {
		t.Fatalf("only %d/%d trials actually crashed — site calibration is off", crashed, trials)
	}
	t.Logf("%d trials, %d injected crashes, sites per run: %v", trials, crashed, sites)
}
