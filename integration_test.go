package ahi_test

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"ahi"
	"ahi/internal/art"
	"ahi/internal/btree"
	"ahi/internal/dataset"
	"ahi/internal/dualstage"
	"ahi/internal/fst"
	"ahi/internal/hybridtrie"
	"ahi/internal/workload"
)

// TestAllIndexesAgree loads the same key/value set into every index
// structure in the repository — the three fixed-encoding B+-trees, the
// adaptive B+-tree, the Dual-Stage index, ART, FST, and the Hybrid Trie —
// and drives them with the same query stream, requiring identical answers
// everywhere while the adaptive variants migrate underneath.
func TestAllIndexesAgree(t *testing.T) {
	keys := dataset.OSM(60_000, 77)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)*3 + 1
	}
	bk := make([][]byte, len(keys))
	for i, k := range keys {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], k)
		bk[i] = append([]byte{}, b[:]...)
	}

	// uint64-keyed indexes.
	u64Indexes := map[string]interface {
		Lookup(uint64) (uint64, bool)
	}{
		"gapped":    ahi.BulkLoadPlainBTree(ahi.EncGapped, keys, vals),
		"packed":    ahi.BulkLoadPlainBTree(ahi.EncPacked, keys, vals),
		"succinct":  ahi.BulkLoadPlainBTree(ahi.EncSuccinct, keys, vals),
		"dualstage": dualstage.New(dualstage.Config{Static: dualstage.Succinct}, keys, vals),
	}
	adaptive := btree.BulkLoadAdaptive(btree.AdaptiveConfig{
		Tree:        btree.Config{DefaultEncoding: btree.EncSuccinct},
		InitialSkip: 4, MinSkip: 2, MaxSkip: 32, MaxSampleSize: 2048,
	}, keys, vals)
	session := adaptive.NewSession()

	// byte-keyed indexes.
	at := art.New()
	for i := range bk {
		at.Insert(bk[i], vals[i])
	}
	f := fst.New(fst.AutoDense(), bk, vals)
	trie := hybridtrie.BuildAdaptive(hybridtrie.AdaptiveConfig{
		Trie:        hybridtrie.Config{CArt: 2, FST: fst.AutoDense()},
		InitialSkip: 4, MinSkip: 2, MaxSkip: 32, MaxSampleSize: 2048,
	}, bk, vals)
	trieSession := trie.NewSession()

	z := workload.NewZipf(len(keys), 1.1, 5)
	rng := rand.New(rand.NewSource(9))
	for op := 0; op < 600_000; op++ {
		var j int
		if op%5 == 4 {
			j = rng.Intn(len(keys)) // uniform tail keeps cold paths honest
		} else {
			j = z.Draw()
		}
		want := vals[j]
		for name, ix := range u64Indexes {
			if v, ok := ix.Lookup(keys[j]); !ok || v != want {
				t.Fatalf("op %d: %s disagrees on %d: (%d,%v) want %d", op, name, keys[j], v, ok, want)
			}
		}
		if v, ok := session.Lookup(keys[j]); !ok || v != want {
			t.Fatalf("op %d: adaptive btree disagrees on %d", op, keys[j])
		}
		if v, ok := at.Lookup(bk[j]); !ok || v != want {
			t.Fatalf("op %d: art disagrees on %d", op, keys[j])
		}
		if v, ok := f.Lookup(bk[j]); !ok || v != want {
			t.Fatalf("op %d: fst disagrees on %d", op, keys[j])
		}
		if v, ok := trieSession.Lookup(bk[j]); !ok || v != want {
			t.Fatalf("op %d: hybrid trie disagrees on %d", op, keys[j])
		}
	}
	// Both adaptive structures must actually have adapted during the run.
	if adaptive.Mgr.Migrations() == 0 {
		t.Fatal("adaptive btree never migrated")
	}
	if trie.Trie.Expansions() == 0 {
		t.Fatal("hybrid trie never expanded")
	}

	// Range agreement: every ordered structure returns the same window.
	for trial := 0; trial < 200; trial++ {
		start := rng.Intn(len(keys) - 64)
		probe := keys[start] + uint64(rng.Intn(2)) // on-key and off-key starts
		wantIdx := sort.Search(len(keys), func(i int) bool { return keys[i] >= probe })
		const n = 32
		collect := func(scan func(func(k, v uint64) bool)) []uint64 {
			var out []uint64
			scan(func(k, v uint64) bool {
				out = append(out, k)
				return true
			})
			return out
		}
		gapped := u64Indexes["gapped"].(*btree.Tree)
		fromGapped := collect(func(fn func(k, v uint64) bool) { gapped.Scan(probe, n, fn) })
		fromDS := collect(func(fn func(k, v uint64) bool) {
			u64Indexes["dualstage"].(*dualstage.Index).Scan(probe, n, fn)
		})
		fromSession := collect(func(fn func(k, v uint64) bool) { session.Scan(probe, n, fn) })
		var fromTrie []uint64
		trieSession.Scan(bk[wantIdx], n, func(k []byte, v uint64) bool {
			fromTrie = append(fromTrie, binary.BigEndian.Uint64(k))
			return true
		})
		for i := 0; i < n && wantIdx+i < len(keys); i++ {
			want := keys[wantIdx+i]
			if fromGapped[i] != want || fromDS[i] != want || fromSession[i] != want || fromTrie[i] != want {
				t.Fatalf("trial %d pos %d: scans disagree: %d %d %d %d want %d",
					trial, i, fromGapped[i], fromDS[i], fromSession[i], fromTrie[i], want)
			}
		}
	}
}

// TestAdaptiveSurvivesWorkloadStorm alternates every workload spec from
// Table 3 against one adaptive tree, verifying integrity after heavy
// mixed-phase churn — the integration-level safety net for the migration
// machinery.
func TestAdaptiveSurvivesWorkloadStorm(t *testing.T) {
	keys := dataset.OSM(40_000, 81)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	a := btree.BulkLoadAdaptive(btree.AdaptiveConfig{
		Tree:        btree.Config{DefaultEncoding: btree.EncSuccinct},
		InitialSkip: 2, MinSkip: 1, MaxSkip: 16, MaxSampleSize: 1024,
	}, keys, vals)
	s := a.NewSession()
	names := []string{"W1.1", "W1.2", "W1.3", "W2", "W4", "W5.1", "W5.2", "W6.1", "W6.2"}
	var sink uint64
	for phase, name := range names {
		gen := workload.NewGenerator(workload.Specs[name], len(keys), int64(phase)*7+1)
		for i := 0; i < 120_000; i++ {
			op := gen.Next()
			switch op.Kind {
			case workload.OpRead:
				v, _ := s.Lookup(keys[op.Index])
				sink += v
			case workload.OpScan:
				s.Scan(keys[op.Index], op.ScanLen, func(k, v uint64) bool { sink += v; return true })
			case workload.OpInsert:
				s.Insert(keys[op.Index]+1, uint64(op.Index))
			}
		}
	}
	_ = sink
	if err := a.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every original key is still present. Values may have been
	// legitimately overwritten where keys[i]+1 collides with an adjacent
	// dataset key (the insert stream derives keys that way), so presence
	// is the invariant; unclobberable keys also keep their value.
	for i := 0; i < len(keys); i += 17 {
		v, ok := a.Tree.Lookup(keys[i])
		if !ok {
			t.Fatalf("key %d lost after the storm", keys[i])
		}
		clobberable := i > 0 && keys[i-1]+1 == keys[i]
		if !clobberable && v != vals[i] {
			t.Fatalf("key %d value corrupted: %d want %d", keys[i], v, vals[i])
		}
	}
	if a.Mgr.Adaptations() < 9 {
		t.Fatalf("expected many adaptations, got %d", a.Mgr.Adaptations())
	}
}
