// One testing.B benchmark per table and figure of the paper (DESIGN.md §2).
// Each benchmark executes the corresponding experiment runner at a reduced
// scale and reports headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. For full tables use cmd/ahibench.
package ahi_test

import (
	"testing"

	"ahi/internal/bench"
)

// benchScale keeps each experiment's single iteration within seconds.
var benchScale = bench.Scale{
	Name: "bench", OSMKeys: 200_000, UserIDs: 200_000, Emails: 60_000,
	ConsecU64: 200_000, OpsPerPhase: 400_000, Interval: 100_000, Threads: 4,
}

func BenchmarkFig2SampleSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunFig2(benchScale)
		b.ReportMetric(float64(rows[0].SampleSize), "sample-size-eps2%")
	}
}

func BenchmarkFig3StorageLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunFig3(benchScale)
		for _, r := range rows {
			if r.Device == "DRAM" && r.Compressed {
				b.ReportMetric(r.ReadNs, "dram-compressed-read-ns")
			}
		}
	}
}

func BenchmarkFig5SamplingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunFig5(benchScale)
		b.ReportMetric(rows[0].NoFilterPct, "skip0-overhead-%")
		b.ReportMetric(rows[len(rows)-1].NoFilterPct, "skip20-overhead-%")
	}
}

func BenchmarkFig6Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunFig6(benchScale)
		b.ReportMetric(rows[0].PerSample, "ns-per-sample")
	}
}

func BenchmarkTable1LeafEncodings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunTable1(benchScale)
		for _, r := range rows {
			b.ReportMetric(r.LatencyNs, r.Encoding+"-lookup-ns")
		}
	}
}

func BenchmarkFig9MigrationCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunFig9(benchScale)
		for _, r := range rows {
			if r.IndexSize == "large" && r.From == "succinct" && r.To == "gapped" {
				b.ReportMetric(r.PerNodeNs, "succinct-to-gapped-ns")
			}
		}
	}
}

func BenchmarkTable2TrieEncodings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunTable2(benchScale)
		for _, r := range rows {
			b.ReportMetric(r.LatencyNs, r.Index+"-lookup-ns")
		}
	}
}

func BenchmarkFig12Phases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := bench.RunFig12(benchScale)
		b.ReportMetric(res.PhaseMeans[bench.VariantAHI][0], "ahi-w11-ns")
		b.ReportMetric(res.PhaseMeans[bench.VariantGapped][0], "gapped-w11-ns")
		b.ReportMetric(float64(res.FinalBytes[bench.VariantAHI]), "ahi-bytes")
		b.ReportMetric(float64(res.FinalBytes[bench.VariantGapped]), "gapped-bytes")
	}
}

func BenchmarkFig13CostFunction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunFig13(benchScale)
		for _, r := range rows {
			if r.Workload == "W1.3" && r.Variant == bench.VariantAHI {
				b.ReportMetric(r.Cost, "ahi-w13-cost")
			}
		}
	}
}

func BenchmarkFig14SkewSweep(b *testing.B) {
	sc := benchScale
	sc.OpsPerPhase /= 2 // 8 alphas x 5 variants
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunFig14(sc)
		for _, r := range rows {
			if r.Alpha == 1.0 && r.Variant == bench.VariantAHI {
				b.ReportMetric(r.LatencyNs, "ahi-alpha1-ns")
				b.ReportMetric(float64(r.Bytes), "ahi-alpha1-bytes")
			}
		}
	}
}

func BenchmarkFig15MemoryBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunFig15(benchScale)
		b.ReportMetric(rows[0].LatencyNs, "min-budget-ns")
		b.ReportMetric(rows[len(rows)-1].LatencyNs, "max-budget-ns")
	}
}

func BenchmarkFig16WritePhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := bench.RunFig16(benchScale)
		b.ReportMetric(float64(res.Expansions), "expansions")
		b.ReportMetric(float64(res.Compactions), "compactions")
	}
}

func BenchmarkFig17DualStage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunFig17(benchScale)
		for _, r := range rows {
			if r.Workload == "W4" && (r.Index == "AHI-BTree" || r.Index == "DualStage-Succinct") {
				b.ReportMetric(r.LatencyNs, r.Index+"-w4-ns")
			}
		}
	}
}

func BenchmarkFig18Concurrency(b *testing.B) {
	sc := benchScale
	sc.OpsPerPhase /= 2
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunFig18(sc)
		for _, r := range rows {
			if r.Threads == sc.Threads && r.Workload == "W5.2" {
				b.ReportMetric(r.MopsPerS, r.Strategy+"-mops")
			}
		}
	}
}

func BenchmarkFig19Emails(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunFig19(benchScale)
		for _, r := range rows {
			if r.Index == "AHI-Trie" {
				b.ReportMetric(r.LatencyNs, "ahi-trie-ns")
			}
			if r.Index == "ART" {
				b.ReportMetric(float64(r.Bytes), "art-bytes")
			}
		}
	}
}

func BenchmarkFig20PrefixRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := bench.RunFig20(benchScale)
		b.ReportMetric(float64(res.Expansions), "expansions")
		b.ReportMetric(float64(len(res.Adaptations)), "adaptations")
	}
}

func BenchmarkTable4LoC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.RunTable4(".")
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Index == "AHI-BTree" && r.Function == "Lookup" {
				b.ReportMetric(float64(r.Tracking), "tracking-loc")
			}
		}
	}
}

// Ablation benches (DESIGN.md §5).

func BenchmarkAblationBloomFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunAblationBloom(benchScale)
		b.ReportMetric(rows[0].LatencyNs, "with-filter-ns")
		b.ReportMetric(rows[1].LatencyNs, "without-filter-ns")
	}
}

func BenchmarkAblationAdaptiveSkip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunAblationAdaptiveSkip(benchScale)
		b.ReportMetric(rows[0].LatencyNs, "adaptive-ns")
	}
}

func BenchmarkAblationEagerExpand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunAblationEagerExpand(benchScale)
		b.ReportMetric(rows[0].LatencyNs, "eager-ns")
		b.ReportMetric(rows[1].LatencyNs, "in-place-ns")
	}
}

func BenchmarkAblationHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunAblationHistory(benchScale)
		b.ReportMetric(rows[0].LatencyNs, "confirmed-ns")
		b.ReportMetric(rows[1].LatencyNs, "impatient-ns")
	}
}

func BenchmarkMicroRankSelect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.RunMicro(benchScale)
		for _, r := range rows {
			b.ReportMetric(r.Value, r.Metric+"-"+r.Unit)
		}
	}
}
