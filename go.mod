module ahi

go 1.23
