// Package ahi is the public API of the Adaptive Hybrid Indexes library, a
// from-scratch Go reproduction of Anneser et al., "Adaptive Hybrid
// Indexes" (SIGMOD 2022).
//
// The library has three layers:
//
//   - The adaptation framework (Manager): sampling-based hot/cold
//     classification with adaptive skip lengths and error-bounded top-k
//     sample sizes, driving encoding migrations through index-supplied
//     callbacks. Embed it to make any index workload-adaptive.
//
//   - The Hybrid B+-tree (BTree): three leaf encodings — Gapped, Packed
//     and Succinct (frame-of-reference + bit packing) — migrated per leaf
//     at run-time. Reads take no locks (B-link with copy-on-write nodes).
//
//   - The Hybrid Trie (Trie): an Adaptive Radix Tree over the hot upper
//     levels and a Fast Succinct Trie (LOUDS-dense/sparse) below, with
//     branch-wise expansion and compaction of subtrees at run-time.
//
// Quick start:
//
//	tree := ahi.BulkLoadBTree(ahi.BTreeOptions{MemoryBudget: 64 << 20}, keys, vals)
//	s := tree.NewSession() // one per goroutine
//	v, ok := s.Lookup(42)
//
//	// Serving at scale: shard the key space and look up in batches.
//	srv := ahi.BulkLoadShardedBTree(ahi.BTreeOptions{Shards: 4}, keys, vals)
//	srv.LookupBatch(queryKeys, resultVals, resultFound) // positional results
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package ahi

import (
	"io"
	"time"

	"ahi/internal/btree"
	"ahi/internal/core"
	"ahi/internal/fst"
	"ahi/internal/hybridtrie"
	"ahi/internal/obs"
	"ahi/internal/shard"
	"ahi/internal/wal"
)

// Observability bundles the library's instrumentation sinks: a metrics
// registry (Prometheus text + JSON over the bundle's HTTP handler), a
// migration trace ring, per-epoch encoding-distribution snapshots, and —
// once EnableTracing is called — a per-operation flight recorder with SLO
// burn-rate tracking. Attach one bundle via BTreeOptions.Obs; disabled
// (nil) observability costs nothing on the access path.
type Observability = obs.Observability

// TracingConfig configures the per-operation flight recorder (see
// BTreeOptions.Tracing): sampling rate, slow-op threshold, ring size,
// and latency SLOs.
type TracingConfig = obs.FlightConfig

// SLOConfig declares latency objectives and burn-rate windows.
type SLOConfig = obs.SLOConfig

// SLOObjective is one latency objective (quantile + target).
type SLOObjective = obs.Objective

// NewObservability creates an Observability bundle with default ring
// capacities.
func NewObservability() *Observability { return obs.New(0, 0) }

// Re-exported framework types: use these to integrate the adaptation
// manager into a custom index (paper §3.1).
type (
	// Manager is the adaptation manager, generic over the tracked unit's
	// identifier and context types.
	Manager[ID comparable, Ctx any] = core.Manager[ID, Ctx]
	// ManagerConfig wires an index's callbacks into a Manager.
	ManagerConfig[ID comparable, Ctx any] = core.Config[ID, Ctx]
	// Sampler is the per-goroutine sampling handle (IsSample/Track).
	Sampler[ID comparable, Ctx any] = core.Sampler[ID, Ctx]
	// Stats are the per-unit access statistics the CSHF sees.
	Stats = core.Stats
	// Action is a CSHF verdict (migrate to Target / evict).
	Action = core.Action
	// Env is the CSHF evaluation environment (budget, epoch, hotness).
	Env = core.Env
	// AccessType labels tracked accesses.
	AccessType = core.AccessType
	// Encoding identifies a node encoding (index-defined).
	Encoding = core.Encoding
	// UnitCounts feeds Equation (1) and the budget-derived k.
	UnitCounts = core.UnitCounts
	// AdaptInfo summarizes one adaptation phase for observers.
	AdaptInfo = core.AdaptInfo
)

// NewManager creates an adaptation manager for a custom index.
func NewManager[ID comparable, Ctx any](cfg ManagerConfig[ID, Ctx]) *Manager[ID, Ctx] {
	return core.New(cfg)
}

// Access types (reads and scans count as reads; inserts, updates and
// deletes as writes).
const (
	Read   = core.Read
	Scan   = core.Scan
	Insert = core.Insert
	Update = core.Update
	Delete = core.Delete
)

// B+-tree leaf encodings, most to least compact.
const (
	EncSuccinct = btree.EncSuccinct
	EncPacked   = btree.EncPacked
	EncGapped   = btree.EncGapped
)

// BTree is the workload-adaptive Hybrid B+-tree (AHI-BTree). Create
// per-goroutine Sessions for tracked operations; the embedded Tree field
// offers untracked access and size introspection.
type BTree = btree.Adaptive

// BTreeSession performs tracked B+-tree operations for one goroutine.
type BTreeSession = btree.Session

// PlainBTree is the non-adaptive B+-tree with a single, fixed leaf
// encoding — the Gapped/Packed/Succinct baselines of the paper.
type PlainBTree = btree.Tree

// ScanReq is one range request of a ScanBatch: up to N pairs with
// key >= From, ascending.
type ScanReq = btree.ScanReq

// ScanSink receives decoded result segments from ScanBatch; segments
// alias reusable scratch and must be consumed before Emit returns.
type ScanSink = btree.ScanSink

// ScanBuffer is the reusable ScanSink: per-request result buffers that
// persist across Reset, so a steady-state ScanBatch loop allocates
// nothing.
type ScanBuffer = btree.ScanBuffer

// BTreeOptions configures an adaptive B+-tree.
type BTreeOptions struct {
	// MemoryBudget bounds the index size in bytes (0 = unbounded);
	// RelativeBudget instead bounds it to a fraction of the all-expanded
	// size.
	MemoryBudget   int64
	RelativeBudget float64
	// ColdEncoding is the bulk-load/default encoding (EncSuccinct when
	// unset is recommended: everything cold until proven hot).
	ColdEncoding Encoding
	// Sampling knobs (zero values take the paper's defaults: adaptive
	// skip in [50, 500], sample size from Equation (1) with ε = δ = 5%).
	// Long-running services keep the defaults; short-lived or small
	// deployments adapt faster with a tighter skip range and sample cap.
	InitialSkip      int
	MinSkip, MaxSkip int
	MaxSampleSize    int
	// OnAdapt observes adaptation phases.
	OnAdapt func(AdaptInfo)
	// Shards, when > 1, key-range-partitions the index across that many
	// adaptive trees behind one front-end (use NewShardedBTree /
	// BulkLoadShardedBTree). Each shard owns its own adaptation manager;
	// MemoryBudget is the total across shards, re-split by hotness.
	Shards int
	// Workers bounds batch fan-out concurrency across shards
	// (default GOMAXPROCS, capped at Shards).
	Workers int
	// AsyncMigrations moves leaf re-encodings off the critical path into
	// a bounded worker pipeline (call Close on the tree when retiring it).
	AsyncMigrations bool
	// CacheFraction, in (0, 1), dedicates that slice of MemoryBudget to a
	// per-tree hot-key result cache probed before the tree walk. The cache
	// bytes are charged against the budget (encodings + cache never exceed
	// it) and admission follows the adaptation sampler's hotness signal.
	// Requires an absolute MemoryBudget; 0 disables the cache. 0.05–0.10
	// is a good starting range for skewed read-heavy workloads.
	CacheFraction float64
	// NegFilterBits, when > 0, attaches a Bloom filter with that many bits
	// per key to every Succinct (cold) leaf, rejecting lookups of absent
	// keys before the compressed search. 6 bits/key ≈ 1.6% false-positive
	// rate; the filter bytes count toward the leaf's budget footprint.
	NegFilterBits int
	// Obs attaches an observability bundle: metrics, migration traces and
	// encoding snapshots flow into it, labelled ObsSource (sharded trees
	// label per shard automatically). Nil disables all instrumentation.
	Obs       *Observability
	ObsSource string
	// Tracing, with Obs set, enables the per-operation flight recorder and
	// SLO tracker before the index is wired (see TracingConfig; the zero
	// value takes the defaults: sample 1/64, slow-op threshold 100µs,
	// lookup p99/p999 objectives). Sessions created from this index then
	// record sampled wide events; ahimon explain-tail consumes them.
	Tracing *TracingConfig
	// Durability, when non-nil, makes writes crash-safe: every
	// insert/delete/batch is logged to a write-ahead log before it is
	// acknowledged, and OpenBTree / OpenShardedBTree recover the index
	// (checkpointed leaf encodings plus log-tail replay) from the same
	// directory. Nil keeps the index purely in-memory; the lookup path is
	// identical either way. Only honored by the Open constructors.
	Durability *DurabilityOptions
}

// DurabilityOptions configures the write-ahead log and checkpoints of a
// durable index (BTreeOptions.Durability).
type DurabilityOptions struct {
	// Dir is the log/checkpoint directory (required; created if missing).
	// Sharded trees place per-shard logs in Dir/shard<i>.
	Dir string
	// SyncPolicy selects when the log reaches stable storage relative to
	// the acknowledgment: SyncAlways (group-committed fsync before every
	// ack — full durability), SyncInterval (background fsync every
	// SyncInterval — bounded ack loss on power failure), or SyncOS
	// (fsync only on segment rotation and Close — survives process
	// crashes, not power loss). Default SyncInterval.
	SyncPolicy SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval
	// (default 5ms).
	SyncInterval time.Duration
	// SegmentBytes caps each log segment (default 64 MiB).
	SegmentBytes int64
	// CheckpointEvery, when > 0, snapshots the index (leaf encodings and
	// adaptation state) after that many logged records, bounding replay
	// time; Checkpoint() forces one on demand. 0 disables automatic
	// checkpoints.
	CheckpointEvery int64
}

// SyncPolicy selects when the write-ahead log is fsynced (see
// DurabilityOptions.SyncPolicy).
type SyncPolicy = wal.SyncPolicy

// Log fsync policies, strongest to weakest.
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncOS       = wal.SyncOS
)

// SyncPolicyByName maps "always", "interval" and "os" to the policy
// constants (for flag parsing).
func SyncPolicyByName(name string) (SyncPolicy, error) { return wal.PolicyByName(name) }

// RecoveryStats reports what OpenBTree reconstructed: whether a
// checkpoint restored the encodings warm, and how much log tail was
// replayed.
type RecoveryStats = btree.RecoveryStats

// ShardedRecoveryStats aggregates per-shard recovery results from
// OpenShardedBTree.
type ShardedRecoveryStats = shard.RecoveryStats

func (o *DurabilityOptions) config() *btree.DurabilityConfig {
	if o == nil {
		return nil
	}
	return &btree.DurabilityConfig{
		Dir:             o.Dir,
		Policy:          o.SyncPolicy,
		Interval:        o.SyncInterval,
		SegmentBytes:    o.SegmentBytes,
		CheckpointEvery: o.CheckpointEvery,
	}
}

func (o BTreeOptions) config() btree.AdaptiveConfig {
	if o.Obs != nil && o.Tracing != nil {
		// Enable before wiring: scopes derive from the recorder at wiring
		// time. Idempotent, so sharded construction (N configs off one
		// options value) enables once.
		o.Obs.EnableTracing(*o.Tracing)
	}
	return btree.AdaptiveConfig{
		Tree:            btree.Config{DefaultEncoding: o.ColdEncoding, NegFilterBits: o.NegFilterBits},
		MemoryBudget:    o.MemoryBudget,
		RelativeBudget:  o.RelativeBudget,
		InitialSkip:     o.InitialSkip,
		MinSkip:         o.MinSkip,
		MaxSkip:         o.MaxSkip,
		MaxSampleSize:   o.MaxSampleSize,
		OnAdapt:         o.OnAdapt,
		AsyncMigrations: o.AsyncMigrations,
		CacheFraction:   o.CacheFraction,
		Obs:             o.Obs,
		ObsSource:       o.ObsSource,
	}
}

func (o BTreeOptions) shardConfig() shard.Config {
	return shard.Config{Shards: o.Shards, Workers: o.Workers, Adaptive: o.config(), Obs: o.Obs}
}

// NewBTree creates an empty adaptive B+-tree.
func NewBTree(opts BTreeOptions) *BTree { return btree.NewAdaptive(opts.config()) }

// OpenBTree opens a durable adaptive B+-tree from opts.Durability.Dir,
// recovering any previous state: the newest valid checkpoint restores the
// tree with its learned leaf encodings and adaptation state warm, then
// the log tail replays every acknowledged write since. A fresh directory
// yields an empty tree. With Durability nil it behaves like NewBTree.
// Call Close to flush and seal the log.
func OpenBTree(opts BTreeOptions) (*BTree, *RecoveryStats, error) {
	cfg := opts.config()
	cfg.Dur = opts.Durability.config()
	return btree.OpenAdaptive(cfg)
}

// BulkLoadBTree builds an adaptive B+-tree from sorted unique keys.
func BulkLoadBTree(opts BTreeOptions, keys, vals []uint64) *BTree {
	return btree.BulkLoadAdaptive(opts.config(), keys, vals)
}

// BulkLoadPlainBTree builds a fixed-encoding baseline tree.
func BulkLoadPlainBTree(enc Encoding, keys, vals []uint64) *PlainBTree {
	return btree.BulkLoad(btree.Config{DefaultEncoding: enc}, keys, vals)
}

// ShardedBTree is the serving front-end: BTreeOptions.Shards key-range
// partitions, each an adaptive B+-tree with its own adaptation manager,
// with batch routing (LookupBatch/InsertBatch group a request batch by
// shard and fan out across a bounded worker pool) and a shared memory
// budget re-split by per-shard hotness. All methods are safe for
// concurrent use; unlike *BTree no per-goroutine sessions are needed.
type ShardedBTree = shard.ShardedBTree

// NewShardedBTree creates an empty sharded adaptive B+-tree; shards split
// the key space evenly.
func NewShardedBTree(opts BTreeOptions) *ShardedBTree {
	return shard.New(opts.shardConfig())
}

// BulkLoadShardedBTree builds a sharded adaptive B+-tree from sorted
// unique keys, cutting shard ranges so each holds an equal share.
func BulkLoadShardedBTree(opts BTreeOptions, keys, vals []uint64) *ShardedBTree {
	return shard.BulkLoad(opts.shardConfig(), keys, vals)
}

// OpenShardedBTree opens a durable sharded adaptive B+-tree: shard i logs
// to and recovers from Durability.Dir/shard<i>, all shards in parallel.
// The shard count must match across restarts (routing bounds derive from
// it). With Durability nil it behaves like NewShardedBTree.
func OpenShardedBTree(opts BTreeOptions) (*ShardedBTree, *ShardedRecoveryStats, error) {
	cfg := opts.shardConfig()
	cfg.Adaptive.Dur = opts.Durability.config()
	return shard.Open(cfg)
}

// Trie is the workload-adaptive Hybrid Trie (AHI-Trie) over byte-string
// keys: ART top levels, FST below, run-time branch-wise refinement.
// Single-goroutine (the paper evaluates it single-threaded; inserts are
// future work there and here).
type Trie = hybridtrie.Adaptive

// TrieSession performs tracked trie operations.
type TrieSession = hybridtrie.Session

// TrieOptions configures an adaptive Hybrid Trie.
type TrieOptions struct {
	// CArt is the number of top levels held in ART (default 2; the paper
	// uses 9 for email keys).
	CArt int
	// DenseLevels forces the FST's LOUDS-dense level count: 0 selects
	// automatically (SuRF's heuristic), negative forces all-sparse.
	DenseLevels int
	// MemoryBudget bounds the total size in bytes (0 = unbounded).
	MemoryBudget int64
	// Sampling knobs (see BTreeOptions).
	InitialSkip      int
	MinSkip, MaxSkip int
	MaxSampleSize    int
	// OnAdapt observes adaptation phases.
	OnAdapt func(AdaptInfo)
}

// BuildTrie builds an adaptive Hybrid Trie from sorted, unique,
// prefix-free byte keys (see TerminateKey for variable-length keys).
func BuildTrie(opts TrieOptions, keys [][]byte, vals []uint64) *Trie {
	if opts.CArt == 0 {
		opts.CArt = 2
	}
	fcfg := fst.AutoDense()
	switch {
	case opts.DenseLevels > 0:
		fcfg = fst.Config{DenseLevels: opts.DenseLevels}
	case opts.DenseLevels < 0:
		fcfg = fst.Config{DenseLevels: 0}
	}
	return hybridtrie.BuildAdaptive(hybridtrie.AdaptiveConfig{
		Trie:          hybridtrie.Config{CArt: opts.CArt, FST: fcfg},
		MemoryBudget:  opts.MemoryBudget,
		InitialSkip:   opts.InitialSkip,
		MinSkip:       opts.MinSkip,
		MaxSkip:       opts.MaxSkip,
		MaxSampleSize: opts.MaxSampleSize,
		OnAdapt:       opts.OnAdapt,
	}, keys, vals)
}

// SaveTrie persists the trie's current state — the static FST, the ART
// top, and every live expansion — in a self-describing binary format.
func SaveTrie(t *Trie, w io.Writer) error {
	_, err := t.Trie.WriteTo(w)
	return err
}

// LoadTrie restores a trie saved by SaveTrie and wires a fresh adaptation
// manager with the given options (the CArt/DenseLevels fields are ignored;
// they are properties of the saved structure).
func LoadTrie(opts TrieOptions, r io.Reader) (*Trie, error) {
	t, err := hybridtrie.ReadTrie(r)
	if err != nil {
		return nil, err
	}
	return hybridtrie.WireAdaptive(t, hybridtrie.AdaptiveConfig{
		MemoryBudget:  opts.MemoryBudget,
		InitialSkip:   opts.InitialSkip,
		MinSkip:       opts.MinSkip,
		MaxSkip:       opts.MaxSkip,
		MaxSampleSize: opts.MaxSampleSize,
		OnAdapt:       opts.OnAdapt,
	}), nil
}

// TerminateKey appends a 0x00 terminator, making variable-length NUL-free
// keys prefix-free as the trie indexes require.
func TerminateKey(key []byte) []byte {
	out := make([]byte, len(key)+1)
	copy(out, key)
	return out
}
