// Command ahibench regenerates the paper's tables and figures.
//
// Usage:
//
//	ahibench -list
//	ahibench -exp fig12 -scale small
//	ahibench -all -scale tiny
//
// Experiment ids follow DESIGN.md §2 (fig2..fig20, tbl1..tbl4, abl-*).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ahi/internal/bench"
	"ahi/internal/obs"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (see -list)")
		scale  = flag.String("scale", "small", "scale: tiny|small|medium")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list experiment ids")
		root   = flag.String("repo", ".", "repository root (for tbl4 LoC counting)")
		csv    = flag.Bool("csv", false, "render tables as CSV")
		record = flag.String("record", "", "write metrics JSON to this file (with -exp serving, scaling, scan, cache, obslat or durability)")
		trace  = flag.String("trace", "", "run the traced observability workload and write the dump (migration trace + epoch snapshots) to this file")
		obsSrv = flag.String("obs", "", "serve /metrics, /dump.json and pprof on this address (e.g. localhost:6060) while running")
	)
	flag.Parse()

	var o *obs.Observability
	if *trace != "" || *obsSrv != "" {
		o = obs.New(0, 0)
		o.PublishExpvar("ahi")
		if *obsSrv != "" {
			_, addr, err := o.Serve(*obsSrv)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("observability endpoint on http://%s/ (metrics, dump.json, debug/pprof)\n", addr)
		}
	}

	reg := bench.Registry(*root, *csv)
	if *list {
		for _, id := range bench.IDs(reg) {
			fmt.Printf("%-12s %s\n", id, reg[id].Title)
		}
		return
	}
	sc, err := bench.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	switch {
	case *trace != "":
		fmt.Printf("### traced — observability capture (scale %s)\n", sc.Name)
		if err := bench.RunTraced(sc, o, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		d := o.Dump()
		d.Recorded = time.Now().UTC().Format(time.RFC3339)
		d.Experiment = "traced"
		if *exp != "" {
			d.Experiment = *exp
		}
		d.Scale = sc.Name
		if err := obs.WriteDump(*trace, d); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *trace)
	case *all:
		if err := bench.RunAll(reg, sc, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *exp == "serving" && *record != "":
		fmt.Printf("### serving — sharded batch serving layer (scale %s)\n", sc.Name)
		if err := bench.RecordServing(sc, *record, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *record)
	case *exp == "scaling" && *record != "":
		fmt.Printf("### scaling — multi-core scaling sweep (scale %s)\n", sc.Name)
		if err := bench.RecordScaling(sc, *record, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *record)
	case *exp == "scan" && *record != "":
		fmt.Printf("### scan — fused range-scan serving sweep (scale %s)\n", sc.Name)
		if err := bench.RecordScan(sc, *record, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *record)
	case *exp == "obslat" && *record != "":
		fmt.Printf("### obslat — per-op tracing overhead & tail attribution (scale %s)\n", sc.Name)
		if err := bench.RecordObsLat(sc, *record, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *record)
	case *exp == "durability" && *record != "":
		fmt.Printf("### durability — WAL fsync policies, group commit & recovery (scale %s)\n", sc.Name)
		if err := bench.RecordDurability(sc, *record, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *record)
	case *exp == "cache" && *record != "":
		fmt.Printf("### cache — read-path cache & negative filters (scale %s)\n", sc.Name)
		if err := bench.RecordCache(sc, *record, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *record)
	case *exp != "":
		e, ok := reg[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(2)
		}
		fmt.Printf("### %s — %s (scale %s)\n", e.ID, e.Title, sc.Name)
		if err := e.Run(sc, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
}
