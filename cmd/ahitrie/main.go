// Command ahitrie builds, persists, and queries Hybrid Trie index files.
// Keys are read one per line (NUL-free; a terminator is appended
// internally), values are the 0-based line numbers.
//
//	ahitrie -build keys.txt -out index.ahi -cart 4
//	ahitrie -index index.ahi -get foo.com@alice
//	ahitrie -index index.ahi -prefix foo.com@ -limit 10
//	ahitrie -index index.ahi -stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"ahi"
	"ahi/internal/stats"
)

func main() {
	var (
		build  = flag.String("build", "", "build an index from this key file (one key per line)")
		out    = flag.String("out", "index.ahi", "output path for -build")
		cart   = flag.Int("cart", 4, "ART cutoff level (c_ART) for -build")
		index  = flag.String("index", "", "existing index file to query")
		get    = flag.String("get", "", "point lookup")
		prefix = flag.String("prefix", "", "prefix scan")
		limit  = flag.Int("limit", 20, "max results for -prefix")
		show   = flag.Bool("stats", false, "print index statistics")
	)
	flag.Parse()

	switch {
	case *build != "":
		if err := buildIndex(*build, *out, *cart); err != nil {
			fatal(err)
		}
	case *index != "":
		trie, err := loadIndex(*index)
		if err != nil {
			fatal(err)
		}
		switch {
		case *get != "":
			key := ahi.TerminateKey([]byte(*get))
			if v, ok := trie.Trie.Lookup(key); ok {
				fmt.Printf("%s -> %d\n", *get, v)
			} else {
				fmt.Printf("%s: not found\n", *get)
				os.Exit(1)
			}
		case *prefix != "":
			n := trie.Trie.ScanPrefix([]byte(*prefix), *limit, func(k []byte, v uint64) bool {
				fmt.Printf("%s -> %d\n", k[:len(k)-1], v) // strip terminator
				return true
			})
			fmt.Printf("(%d results)\n", n)
		case *show:
			t := trie.Trie
			fmt.Printf("keys:        %d\n", t.Len())
			fmt.Printf("total size:  %s\n", stats.HumanBytes(t.Bytes()))
			fmt.Printf("  FST:       %s\n", stats.HumanBytes(t.FSTBytes()))
			fmt.Printf("  ART:       %s\n", stats.HumanBytes(t.ARTBytes()))
			fmt.Printf("c_ART:       %d\n", t.CArt())
			fmt.Printf("expanded:    %d subtrees (%d expansions, %d compactions lifetime)\n",
				t.Expanded(), t.Expansions(), t.Compactions())
		default:
			flag.Usage()
			os.Exit(2)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func buildIndex(keyFile, out string, cart int) error {
	f, err := os.Open(keyFile)
	if err != nil {
		return err
	}
	defer f.Close()
	var keys [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		keys = append(keys, ahi.TerminateKey([]byte(line)))
	}
	if err := sc.Err(); err != nil {
		return err
	}
	vals := make([]uint64, len(keys))
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return string(keys[order[a]]) < string(keys[order[b]]) })
	sortedKeys := make([][]byte, 0, len(keys))
	prevSet := false
	var prev []byte
	dups := 0
	for _, idx := range order {
		if prevSet && string(keys[idx]) == string(prev) {
			dups++
			continue
		}
		sortedKeys = append(sortedKeys, keys[idx])
		vals[len(sortedKeys)-1] = uint64(idx)
		prev, prevSet = keys[idx], true
	}
	vals = vals[:len(sortedKeys)]
	trie := ahi.BuildTrie(ahi.TrieOptions{CArt: cart}, sortedKeys, vals)
	w, err := os.Create(out)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := ahi.SaveTrie(trie, w); err != nil {
		return err
	}
	st, _ := w.Stat()
	fmt.Printf("indexed %d keys (%d duplicates dropped) -> %s (%s)\n",
		len(sortedKeys), dups, out, stats.HumanBytes(st.Size()))
	return nil
}

func loadIndex(path string) (*ahi.Trie, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ahi.LoadTrie(ahi.TrieOptions{}, f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ahitrie:", err)
	os.Exit(1)
}
