// Command ahidata inspects the synthetic datasets and workloads used by
// the experiment suite: it prints dataset samples, key-space statistics,
// and workload CDFs (the paper's Figure 11) as text histograms.
//
// Usage:
//
//	ahidata -dataset osm -n 100000 -sample 5
//	ahidata -cdf W1.1 -n 1000000
//	ahidata -workload W5.1 -ops 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ahi/internal/dataset"
	"ahi/internal/workload"
)

func main() {
	var (
		ds     = flag.String("dataset", "", "dataset to inspect: osm|userids|emails|ycsb|consecutive")
		n      = flag.Int("n", 100_000, "dataset size")
		sample = flag.Int("sample", 5, "number of sample entries to print")
		seed   = flag.Int64("seed", 1, "generator seed")
		cdf    = flag.String("cdf", "", "workload whose key-selection CDF to print (e.g. W1.1)")
		wl     = flag.String("workload", "", "workload whose operations to print")
		ops    = flag.Int("ops", 10, "number of operations to print")
	)
	flag.Parse()

	switch {
	case *ds != "":
		inspectDataset(*ds, *n, *sample, *seed)
	case *cdf != "":
		printCDF(*cdf, *n, *seed)
	case *wl != "":
		printOps(*wl, *n, *ops, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func inspectDataset(name string, n, sample int, seed int64) {
	switch name {
	case "osm", "userids", "ycsb", "consecutive":
		var keys []uint64
		switch name {
		case "osm":
			keys = dataset.OSM(n, seed)
		case "userids":
			keys = dataset.UserIDs(n, seed)
		case "ycsb":
			keys = dataset.YCSBKeys(n, seed)
		case "consecutive":
			keys = dataset.ConsecutiveU64(n, 1)
		}
		fmt.Printf("%s: %d unique sorted 64-bit keys\n", name, len(keys))
		fmt.Printf("  min=%#x max=%#x span=%.3g\n", keys[0], keys[len(keys)-1], float64(keys[len(keys)-1]-keys[0]))
		var sumGap float64
		for i := 1; i < len(keys); i++ {
			sumGap += float64(keys[i] - keys[i-1])
		}
		fmt.Printf("  mean gap=%.1f\n", sumGap/float64(len(keys)-1))
		for i := 0; i < sample && i < len(keys); i++ {
			fmt.Printf("  [%d] %#016x\n", i, keys[i])
		}
	case "emails":
		keys := dataset.Emails(n, seed)
		total := 0
		for _, k := range keys {
			total += len(k)
		}
		fmt.Printf("emails: %d unique host-reversed addresses, avg len %.1f\n",
			len(keys), float64(total)/float64(len(keys)))
		for i := 0; i < sample && i < len(keys); i++ {
			fmt.Printf("  [%d] %s\n", i, keys[i])
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", name)
		os.Exit(2)
	}
}

func printCDF(wname string, n int, seed int64) {
	spec, ok := workload.Specs[wname]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", wname)
		os.Exit(2)
	}
	gen := workload.NewGenerator(spec, n, seed)
	const buckets = 40
	counts := make([]int, buckets)
	const draws = 200_000
	for i := 0; i < draws; i++ {
		op := gen.Next()
		b := op.Index * buckets / n
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	fmt.Printf("%s key-selection CDF over the sorted key space (Figure 11 style):\n", wname)
	cum := 0
	for i, c := range counts {
		cum += c
		frac := float64(cum) / draws
		bar := strings.Repeat("#", int(frac*50))
		fmt.Printf("  %3d%% of keyspace | %-50s %5.1f%%\n", (i+1)*100/buckets, bar, 100*frac)
	}
}

func printOps(wname string, n, ops int, seed int64) {
	spec, ok := workload.Specs[wname]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", wname)
		os.Exit(2)
	}
	gen := workload.NewGenerator(spec, n, seed)
	kind := map[workload.OpKind]string{
		workload.OpRead: "READ", workload.OpScan: "SCAN", workload.OpInsert: "INSERT",
	}
	fmt.Printf("%s: first %d operations over %d keys\n", wname, ops, n)
	for i := 0; i < ops; i++ {
		op := gen.Next()
		if op.Kind == workload.OpScan {
			fmt.Printf("  %-6s idx=%-9d len=%d\n", kind[op.Kind], op.Index, op.ScanLen)
		} else {
			fmt.Printf("  %-6s idx=%d\n", kind[op.Kind], op.Index)
		}
	}
}
