package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParse(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	const out = `goos: linux
goarch: amd64
BenchmarkLookupBatchCache10-8   	  500000	       231.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkLookupBatchCache10-8   	  600000	       215.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkSessionLookupNoCache-8 	  300000	       410.0 ns/op
BenchmarkLeaky-8                	  100000	       999.0 ns/op	      16 B/op	       2 allocs/op
PASS
`
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parse(path)
	if err != nil {
		t.Fatal(err)
	}
	// -8 suffix stripped; fastest repetition kept.
	r, ok := got["BenchmarkLookupBatchCache10"]
	if !ok || r.nsOp != 215.2 {
		t.Fatalf("LookupBatchCache10 = %+v, %v", r, ok)
	}
	if !r.hasAllocs || r.allocsOp != 0 {
		t.Fatalf("allocs not parsed: %+v", r)
	}
	// No -benchmem columns: hasAllocs must stay false.
	if r := got["BenchmarkSessionLookupNoCache"]; r.hasAllocs || r.nsOp != 410 {
		t.Fatalf("SessionLookupNoCache = %+v", r)
	}
	if r := got["BenchmarkLeaky"]; r.allocsOp != 2 {
		t.Fatalf("Leaky allocs = %+v", r)
	}
}
