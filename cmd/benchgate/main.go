// Command benchgate is a dependency-free benchstat-style gate for CI.
//
// It parses `go test -bench` output (use -count to repeat; the fastest
// repetition per benchmark is kept, the usual noise floor for shared
// runners) and enforces two checks:
//
//	benchgate -new new.txt -old old.txt -threshold 10
//	    fail if any benchmark present in both files regressed by more
//	    than threshold percent (ns/op, min over repetitions)
//	benchgate -new new.txt -zero-allocs 'LookupBatch'
//	    fail if any benchmark matching the regex reports a nonzero
//	    allocs/op, or if none match (wiring rot), or if the run was
//	    missing -benchmem
//	benchgate -new new.txt -ratio 'BenchmarkWithFeature,BenchmarkBaseline' -ratio-threshold 1
//	    fail if the first benchmark's ns/op exceeds the second's by more
//	    than threshold percent — an overhead budget between two
//	    benchmarks of the SAME run, immune to runner-to-runner noise
//
// All checks may be combined in one invocation. Exit status 1 on any
// violation, with a per-benchmark report either way.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	nsOp      float64
	allocsOp  float64
	hasAllocs bool
}

// parse reads go-test bench output, keeping the fastest ns/op and the
// worst allocs/op seen per benchmark name across repetitions. The
// -GOMAXPROCS suffix is stripped so runs from differently sized runners
// still line up.
func parse(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]result{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r, seen := out[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				if !seen || v < r.nsOp {
					r.nsOp = v
				}
			case "allocs/op":
				if !r.hasAllocs || v > r.allocsOp {
					r.allocsOp = v
				}
				r.hasAllocs = true
			}
		}
		out[name] = r
	}
	return out, sc.Err()
}

func main() {
	var (
		newPath   = flag.String("new", "", "bench output to check (required)")
		oldPath   = flag.String("old", "", "baseline bench output to compare against")
		threshold = flag.Float64("threshold", 10, "max allowed ns/op regression, percent")
		zeroRe    = flag.String("zero-allocs", "", "regex of benchmarks that must report allocs/op == 0")
		ratio     = flag.String("ratio", "", "'CHECK,BASE' benchmark pair compared within -new")
		ratioMax  = flag.Float64("ratio-threshold", 1, "max allowed CHECK-over-BASE ns/op overhead, percent")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}
	cur, err := parse(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark results in %s\n", *newPath)
		os.Exit(1)
	}
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)

	failed := false
	if *oldPath != "" {
		base, err := parse(*oldPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		compared := 0
		for _, n := range names {
			b, ok := base[n]
			if !ok {
				fmt.Printf("%-44s %10.1f ns/op  (new benchmark)\n", n, cur[n].nsOp)
				continue
			}
			compared++
			delta := 100 * (cur[n].nsOp - b.nsOp) / b.nsOp
			verdict := "ok"
			if delta > *threshold {
				verdict = fmt.Sprintf("REGRESSION (limit +%.0f%%)", *threshold)
				failed = true
			}
			fmt.Printf("%-44s %10.1f -> %10.1f ns/op  %+6.1f%%  %s\n", n, b.nsOp, cur[n].nsOp, delta, verdict)
		}
		if compared == 0 {
			fmt.Fprintln(os.Stderr, "benchgate: no common benchmarks between old and new")
			failed = true
		}
	}

	if *zeroRe != "" {
		re, err := regexp.Compile(*zeroRe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		matched := 0
		for _, n := range names {
			if !re.MatchString(n) {
				continue
			}
			matched++
			r := cur[n]
			switch {
			case !r.hasAllocs:
				fmt.Printf("%-44s no allocs/op reported — run with -benchmem\n", n)
				failed = true
			case r.allocsOp != 0:
				fmt.Printf("%-44s %g allocs/op, want 0\n", n, r.allocsOp)
				failed = true
			default:
				fmt.Printf("%-44s 0 allocs/op  ok\n", n)
			}
		}
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: no benchmark matches -zero-allocs %q\n", *zeroRe)
			failed = true
		}
	}

	if *ratio != "" {
		check, base, ok := strings.Cut(*ratio, ",")
		if !ok || check == "" || base == "" {
			fmt.Fprintln(os.Stderr, "benchgate: -ratio wants 'CHECK,BASE'")
			os.Exit(2)
		}
		cr, cok := cur[check]
		br, bok := cur[base]
		switch {
		case !cok || !bok:
			for n, there := range map[string]bool{check: cok, base: bok} {
				if !there {
					fmt.Fprintf(os.Stderr, "benchgate: -ratio benchmark %q not in %s\n", n, *newPath)
				}
			}
			failed = true
		case br.nsOp <= 0:
			fmt.Fprintf(os.Stderr, "benchgate: -ratio base %q has no ns/op\n", base)
			failed = true
		default:
			over := 100 * (cr.nsOp - br.nsOp) / br.nsOp
			verdict := "ok"
			if over > *ratioMax {
				verdict = fmt.Sprintf("OVER BUDGET (limit +%.1f%%)", *ratioMax)
				failed = true
			}
			fmt.Printf("%s / %s: %.1f / %.1f ns/op  %+.2f%%  %s\n",
				check, base, cr.nsOp, br.nsOp, over, verdict)
		}
	}

	if failed {
		os.Exit(1)
	}
}
