// Command ahimon inspects the adaptation framework's observability dump:
// it replays a trace file written by `ahibench -trace`, or attaches to a
// running process serving the debug endpoint (`ahibench -obs addr`) and
// re-renders the live state every interval.
//
// Usage:
//
//	ahimon -replay /tmp/trace.json
//	ahimon -replay /tmp/trace.json -explain-tail
//	ahimon -attach localhost:6060 -interval 2s
//	ahimon -attach localhost:6060 -once
//	ahimon -attach localhost:6060 -explain-tail -quantile 0.99
//
// -explain-tail ranks what the recorded ops beyond the chosen latency
// quantile were waiting on (flight-recorder cause tags), linking
// migration-overlap exemplars into the migration trace. Attach mode polls
// incrementally: after the first /dump.json seed, only trace and op
// events newer than the last seen seq are fetched (?since=).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"ahi/internal/obs"
)

func main() {
	var (
		replay   = flag.String("replay", "", "render a dump file written by ahibench -trace")
		attach   = flag.String("attach", "", "poll a live /dump.json endpoint (host:port or URL)")
		interval = flag.Duration("interval", 2*time.Second, "poll interval with -attach")
		once     = flag.Bool("once", false, "with -attach: render one snapshot and exit")
		events   = flag.Int("events", 12, "how many trailing trace events to show")
		tailMode = flag.Bool("explain-tail", false, "rank the causes of the latency tail from recorded ops")
		quantile = flag.Float64("quantile", 0.999, "with -explain-tail: the tail cut quantile")
	)
	flag.Parse()

	switch {
	case *replay != "":
		d, err := obs.ReadDump(*replay)
		if err != nil {
			fatal(err)
		}
		if err := d.Validate(); err != nil {
			fatal(fmt.Errorf("%s: %w", *replay, err))
		}
		if *tailMode {
			renderExplainTail(os.Stdout, &d, *quantile)
			return
		}
		render(os.Stdout, &d, *events)
	case *attach != "":
		base := *attach
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		st := &attachState{base: strings.TrimRight(base, "/")}
		for {
			if err := st.poll(); err != nil {
				fatal(err)
			}
			if !*once {
				fmt.Print("\x1b[H\x1b[2J") // clear, cursor home
			}
			fmt.Printf("ahimon — %s — %s\n\n", st.base, time.Now().Format(time.TimeOnly))
			if *tailMode {
				renderExplainTail(os.Stdout, st.d, *quantile)
			} else {
				render(os.Stdout, st.d, *events)
			}
			if *once {
				return
			}
			time.Sleep(*interval)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func fetch(url string) (*obs.Dump, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	var d obs.Dump
	if err := json.Unmarshal(body, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	if d.Schema != obs.DumpSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", url, d.Schema, obs.DumpSchema)
	}
	return &d, nil
}

// render prints the dump: per-source epoch convergence, the migration
// cost/trigger summary, and the trailing trace events.
func render(w io.Writer, d *obs.Dump, tail int) {
	if d.Experiment != "" || d.Scale != "" || d.Recorded != "" {
		fmt.Fprintf(w, "experiment=%s scale=%s recorded=%s\n\n", d.Experiment, d.Scale, d.Recorded)
	}
	bySource := map[string][]obs.Snapshot{}
	var sources []string
	for _, s := range d.Snapshots {
		if _, seen := bySource[s.Source]; !seen {
			sources = append(sources, s.Source)
		}
		bySource[s.Source] = append(bySource[s.Source], s)
	}
	sort.Strings(sources)
	for _, src := range sources {
		renderEpochs(w, src, bySource[src])
	}
	renderCache(w, d)
	renderOps(w, d)
	renderSLO(w, d)
	renderTrace(w, d, tail)
}

// renderCache summarizes the read-path cache and negative-filter metrics
// per source: hit rate, admission/eviction churn, invalidations, and the
// bytes the cache charges against the memory budget. Silent when no cache
// metrics are present (CacheFraction unset).
func renderCache(w io.Writer, d *obs.Dump) {
	type row struct {
		hits, misses, admitted, rejected float64
		invalidations, evictions, bytes  float64
		negHits                          float64
	}
	rows := map[string]*row{}
	get := func(src string) *row {
		r := rows[src]
		if r == nil {
			r = &row{}
			rows[src] = r
		}
		return r
	}
	for name, v := range d.Metrics {
		base, src := splitMetric(name)
		switch base {
		case "ahi_cache_hits_total":
			get(src).hits = v
		case "ahi_cache_misses_total":
			get(src).misses = v
		case "ahi_cache_admitted_total":
			get(src).admitted = v
		case "ahi_cache_rejected_total":
			get(src).rejected = v
		case "ahi_cache_invalidations_total":
			get(src).invalidations = v
		case "ahi_cache_evictions_total":
			get(src).evictions = v
		case "ahi_cache_bytes":
			get(src).bytes = v
		case "ahi_negfilter_hits_total":
			get(src).negHits = v
		}
	}
	if len(rows) == 0 {
		return
	}
	var srcs []string
	for s := range rows {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	fmt.Fprintln(w, "== read-path cache ==")
	fmt.Fprintf(w, "%-10s %9s %7s %9s %9s %9s %9s %9s %9s\n",
		"source", "hits", "rate", "misses", "admit", "reject", "inval", "evict", "neg-hits")
	for _, s := range srcs {
		r := rows[s]
		name := s
		if name == "" {
			name = "(default)"
		}
		rate := "-"
		if tot := r.hits + r.misses; tot > 0 {
			rate = fmt.Sprintf("%5.1f%%", 100*r.hits/tot)
		}
		fmt.Fprintf(w, "%-10s %9.0f %7s %9.0f %9.0f %9.0f %9.0f %9.0f %9.0f\n",
			name, r.hits, rate, r.misses, r.admitted, r.rejected,
			r.invalidations, r.evictions, r.negHits)
		if r.bytes > 0 {
			fmt.Fprintf(w, "%-10s cache footprint %s (charged against the memory budget)\n",
				"", mib(int64(r.bytes)))
		}
	}
	fmt.Fprintln(w)
}

// splitMetric splits a rendered metric key like `name{source="s0"}` into
// its base name and source label ("" when unlabeled).
func splitMetric(name string) (base, src string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	base = name[:i]
	rest := name[i:]
	const tag = `source="`
	j := strings.Index(rest, tag)
	if j < 0 {
		return base, ""
	}
	rest = rest[j+len(tag):]
	if k := strings.IndexByte(rest, '"'); k >= 0 {
		return base, rest[:k]
	}
	return base, ""
}

func renderEpochs(w io.Writer, src string, snaps []obs.Snapshot) {
	name := src
	if name == "" {
		name = "(default)"
	}
	fmt.Fprintf(w, "== %s: %d epochs ==\n", name, len(snaps))
	fmt.Fprintf(w, "%5s %6s %7s %5s %5s %5s %5s %5s %5s %6s  %s\n",
		"epoch", "skip", "sample", "hot", "migr", "queue", "bpres", "coal", "dedup", "track", "encodings (units)")
	for i := range snaps {
		s := &snaps[i]
		fmt.Fprintf(w, "%5d %6d %7d %5d %5d %5d %5d %5d %5d %6d  %s\n",
			s.Epoch, s.Skip, s.SampleSize, s.Hot, s.Migrations, s.Queued,
			s.Backpressured, s.Coalesced, s.Deduped, s.TrackedUnits, encodingBar(s.Encodings))
	}
	last := &snaps[len(snaps)-1]
	if last.BudgetBytes > 0 {
		if last.ChargedBytes > 0 {
			fmt.Fprintf(w, "budget %s used %s cache %s headroom %s\n",
				mib(last.BudgetBytes), mib(last.UsedBytes),
				mib(last.ChargedBytes), mib(last.Headroom()))
		} else {
			fmt.Fprintf(w, "budget %s used %s headroom %s\n",
				mib(last.BudgetBytes), mib(last.UsedBytes), mib(last.Headroom()))
		}
	}
	if last.RetireDepth > 0 || last.EpochLag > 0 {
		fmt.Fprintf(w, "reclaim: retire-list depth %d, reader epoch lag %d\n",
			last.RetireDepth, last.EpochLag)
	}
	fmt.Fprintln(w)
}

// encodingBar renders the unit distribution, e.g.
// "succinct:312 packed:12 gapped:76".
func encodingBar(enc []obs.EncodingClass) string {
	if len(enc) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(enc))
	for _, e := range enc {
		parts = append(parts, fmt.Sprintf("%s:%d", e.Name, e.Units))
	}
	return strings.Join(parts, " ")
}

func renderTrace(w io.Writer, d *obs.Dump, tail int) {
	if len(d.Trace) == 0 {
		fmt.Fprintln(w, "== migration trace: empty ==")
		return
	}
	type agg struct {
		n, fail         int
		buildNs, waitNs int64
	}
	byTrigger := map[string]*agg{}
	for i := range d.Trace {
		ev := &d.Trace[i]
		a := byTrigger[ev.Trigger.String()]
		if a == nil {
			a = &agg{}
			byTrigger[ev.Trigger.String()] = a
		}
		a.n++
		if !ev.OK {
			a.fail++
		}
		a.buildNs += ev.BuildNs
		a.waitNs += ev.QueueWaitNs
	}
	fmt.Fprintf(w, "== migration trace: %d events (%d total, %d dropped) ==\n",
		len(d.Trace), d.TraceTotal, d.TraceDropped)
	var trigs []string
	for t := range byTrigger {
		trigs = append(trigs, t)
	}
	sort.Strings(trigs)
	fmt.Fprintf(w, "%-8s %6s %6s %12s %12s\n", "trigger", "count", "failed", "avg build", "avg wait")
	for _, t := range trigs {
		a := byTrigger[t]
		fmt.Fprintf(w, "%-8s %6d %6d %12s %12s\n", t, a.n, a.fail,
			time.Duration(a.buildNs/int64(a.n)), time.Duration(a.waitNs/int64(a.n)))
	}
	if tail > len(d.Trace) {
		tail = len(d.Trace)
	}
	if tail > 0 {
		fmt.Fprintf(w, "\nlast %d events:\n", tail)
		for _, ev := range d.Trace[len(d.Trace)-tail:] {
			mode := "inline"
			if ev.Async {
				mode = "async"
			}
			status := "ok"
			if !ev.OK {
				status = "FAIL"
			}
			fmt.Fprintf(w, "  #%-6d epoch %-4d %-8s %-8s unit %016x %s -> %s (%s, build %s) %s\n",
				ev.Seq, ev.Epoch, ev.Source, ev.Trigger, ev.Unit, ev.From, ev.To,
				mode, time.Duration(ev.BuildNs), status)
		}
	}
}

func mib(b int64) string { return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20)) }
