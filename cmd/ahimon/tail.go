package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"ahi/internal/obs"
)

// attachRetain bounds how many trace/op events a long -attach session
// keeps in memory for analysis (the endpoints serve deltas; without a cap
// the local copy would grow forever).
const attachRetain = 8192

// attachState is one -attach session's incremental view of a remote
// bundle: the first poll seeds from /dump.json, later polls refresh
// metrics/snapshots/SLO and fetch only trace and op events newer than the
// last seen seq (?since=), so steady-state polling cost is proportional
// to event arrival, not ring size.
type attachState struct {
	base     string
	d        *obs.Dump
	traceSeq int64
	opSeq    int64
}

func (st *attachState) poll() error {
	if st.d == nil {
		d, err := fetch(st.base + "/dump.json")
		if err != nil {
			return err
		}
		st.d = d
	} else {
		if err := fetchJSON(st.base+"/metrics.json", &st.d.Metrics); err != nil {
			return err
		}
		st.d.Snapshots = st.d.Snapshots[:0]
		if err := fetchJSON(st.base+"/snapshots.json", &st.d.Snapshots); err != nil {
			return err
		}
		var trace []obs.MigrationEvent
		if err := fetchJSON(fmt.Sprintf("%s/trace.json?since=%d", st.base, st.traceSeq), &trace); err != nil {
			return err
		}
		st.d.Trace = append(st.d.Trace, trace...)
		st.d.TraceTotal += int64(len(trace))
		var ops []obs.OpEvent
		if err := fetchJSON(fmt.Sprintf("%s/ops.json?since=%d", st.base, st.opSeq), &ops); err != nil {
			return err
		}
		st.d.Ops = append(st.d.Ops, ops...)
		st.d.OpsTotal += int64(len(ops))
		var slo obs.SLOReport
		if err := fetchJSON(st.base+"/slo.json", &slo); err != nil {
			return err
		}
		if len(slo.Objectives) > 0 {
			st.d.SLO = &slo
		}
	}
	if n := len(st.d.Trace); n > 0 {
		st.traceSeq = st.d.Trace[n-1].Seq
		if n > attachRetain {
			st.d.Trace = append(st.d.Trace[:0:0], st.d.Trace[n-attachRetain:]...)
		}
	}
	if n := len(st.d.Ops); n > 0 {
		st.opSeq = st.d.Ops[n-1].Seq
		if n > attachRetain {
			st.d.Ops = append(st.d.Ops[:0:0], st.d.Ops[n-attachRetain:]...)
		}
	}
	return nil
}

func fetchJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}
	return nil
}

// renderOps summarizes the retained flight-recorder events: volume, slow
// ops, and the cause mix.
func renderOps(w io.Writer, d *obs.Dump) {
	if len(d.Ops) == 0 {
		return
	}
	type agg struct {
		n, slow int
		worstNs int64
	}
	byCause := map[obs.Cause]*agg{}
	slow := 0
	for i := range d.Ops {
		ev := &d.Ops[i]
		a := byCause[ev.Cause]
		if a == nil {
			a = &agg{}
			byCause[ev.Cause] = a
		}
		a.n++
		if ev.Slow {
			a.slow++
			slow++
		}
		if ev.DurNs > a.worstNs {
			a.worstNs = ev.DurNs
		}
	}
	fmt.Fprintf(w, "== flight recorder: %d events retained (%d recorded, %d dropped, %d slow) ==\n",
		len(d.Ops), d.OpsTotal, d.OpsDropped, slow)
	fmt.Fprintf(w, "%-18s %8s %7s %6s %12s\n", "cause", "events", "share", "slow", "worst")
	for _, c := range obs.Causes() {
		a := byCause[c]
		if a == nil {
			continue
		}
		fmt.Fprintf(w, "%-18s %8d %6.1f%% %6d %12s\n",
			c, a.n, 100*float64(a.n)/float64(len(d.Ops)), a.slow, time.Duration(a.worstNs))
	}
	fmt.Fprintln(w)
}

// renderSLO prints the objective table with per-window burn rates.
func renderSLO(w io.Writer, d *obs.Dump) {
	if d.SLO == nil || len(d.SLO.Objectives) == 0 {
		return
	}
	fmt.Fprintln(w, "== SLO burn rates ==")
	for _, o := range d.SLO.Objectives {
		fmt.Fprintf(w, "%s %s p%g <= %s: %d ops, %d breaches lifetime\n",
			o.Name, o.Op, o.Quantile*100, time.Duration(o.TargetNs), o.TotalOps, o.TotalBad)
		for _, win := range o.Windows {
			fmt.Fprintf(w, "  window %-6s %10d ops %8d bad  burn %.2fx\n",
				win.Window, win.Ops, win.Bad, win.BurnRate)
		}
	}
	fmt.Fprintln(w)
}

// renderExplainTail ranks the causes of the ≥q latency tail per op kind,
// resolving migration-overlap exemplars against the dump's trace ring.
func renderExplainTail(w io.Writer, d *obs.Dump, q float64) {
	if len(d.Ops) == 0 {
		fmt.Fprintln(w, "explain-tail: no flight-recorder events in dump (run with tracing enabled)")
		return
	}
	migBySeq := map[int64]*obs.MigrationEvent{}
	for i := range d.Trace {
		migBySeq[d.Trace[i].Seq] = &d.Trace[i]
	}
	for _, rep := range obs.ExplainTail(d.Ops, q) {
		fmt.Fprintf(w, "== tail analysis: %s — %d events, p50 %s, p%g threshold %s ==\n",
			rep.Kind, rep.Events, time.Duration(rep.P50Ns), rep.Quantile*100,
			time.Duration(rep.ThresholdNs))
		fmt.Fprintf(w, "%d tail ops, %.1f%% attributed to a named cause\n",
			rep.TailOps, 100*rep.NamedFraction())
		for _, c := range rep.Causes {
			fmt.Fprintf(w, "  %5.1f%% (%d ops) %-18s worst %s", 100*c.Fraction, c.Count,
				c.Cause, time.Duration(c.WorstNs))
			if c.Source != "" && c.SourceCount > 0 {
				fmt.Fprintf(w, "  mostly %s (%d)", c.Source, c.SourceCount)
			}
			fmt.Fprintln(w)
			if c.ExemplarMigSeq > 0 {
				if m, ok := migBySeq[c.ExemplarMigSeq]; ok {
					fmt.Fprintf(w, "         exemplar op #%d overlapped migration #%d: %s %s -> %s unit %016x\n",
						c.ExemplarSeq, m.Seq, m.Source, m.From, m.To, m.Unit)
				} else {
					fmt.Fprintf(w, "         exemplar op #%d overlapped migration #%d (aged out of trace ring)\n",
						c.ExemplarSeq, c.ExemplarMigSeq)
				}
			}
		}
		fmt.Fprintln(w)
	}
}
