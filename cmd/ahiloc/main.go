// Command ahiloc reproduces Table 4: the lines-of-code accounting of the
// lookup and insert paths of the hybrid indexes, split into index logic
// and workload-tracking hooks, counted from this repository's sources.
//
// Usage:
//
//	ahiloc            # counts relative to the current directory
//	ahiloc -repo ..   # explicit repository root
package main

import (
	"flag"
	"fmt"
	"os"

	"ahi/internal/bench"
)

func main() {
	root := flag.String("repo", ".", "repository root")
	flag.Parse()
	_, tbl, err := bench.RunTable4(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tbl.Render(os.Stdout)
}
